//! The rule implementations, one module per rule family.
//!
//! Hygiene rules (token-level): [`safety`], [`atomics`], [`unwraps`],
//! [`locks`]. Protocol-discipline rules (function-granular, built on
//! [`crate::parse`]): [`resolution`], [`deadline`], [`bounded`],
//! [`typederr`]. Shared scoping and annotation-grammar helpers live here.

pub(crate) mod atomics;
pub(crate) mod bounded;
pub(crate) mod deadline;
pub(crate) mod locks;
pub(crate) mod resolution;
pub(crate) mod safety;
pub(crate) mod typederr;
pub(crate) mod unwraps;

use crate::{FileCtx, FileMode};

/// Protocol-code scope: the crates that own pending-op lifecycles and the
/// typed error ladder. Applies to `resolution`, `deadline-clip`,
/// `typed-error` (and `unwraps`).
pub(crate) fn in_protocol_scope(file: &str, mode: FileMode) -> bool {
    if mode == FileMode::Single {
        return true;
    }
    let norm = file.replace('\\', "/");
    norm.contains("ntb-net/src/") || norm.contains("shmem-core/src/")
}

/// Bounded-wait scope: protocol crates plus the simulated hardware (its
/// service loops spin too); excludes `shmem-bench` (a measurement harness
/// whose busy loops *are* the workload).
pub(crate) fn in_bounded_scope(file: &str, mode: FileMode) -> bool {
    if mode == FileMode::Single {
        return true;
    }
    let norm = file.replace('\\', "/");
    norm.contains("ntb-net/src/")
        || norm.contains("shmem-core/src/")
        || norm.contains("ntb-sim/src/")
}

/// Does `text` contain a well-formed `RESOLVES(<event>): reason`
/// annotation for `event`? Pass `None` to accept any event name
/// (typed-error reuses the grammar for "no pending entry here" notes).
/// The reason must be non-empty — a bare `RESOLVES(X):` is tampering.
pub(crate) fn resolves_annotation_matches(text: &str, event: Option<&str>) -> bool {
    let mut rest = text;
    while let Some(p) = rest.find("RESOLVES(") {
        let after = &rest[p + "RESOLVES(".len()..];
        if let Some(close) = after.find(')') {
            let ev = after[..close].trim();
            let tail = after[close + 1..].trim_start();
            let ev_ok = match event {
                Some(want) => ev == want,
                None => !ev.is_empty(),
            };
            if ev_ok && tail.starts_with(':') && tail[1..].trim().len() >= 3 {
                return true;
            }
        }
        rest = after;
    }
    false
}

/// Is the site at `line` waived by a `RESOLVES(<event>): reason`
/// annotation (same line, contiguous comment block above, or the line
/// just below a block opener — same placement as every other annotation)?
pub(crate) fn has_resolves_annotation(ctx: &FileCtx<'_>, line: u32, event: Option<&str>) -> bool {
    ctx.annotated_by(line, |c| resolves_annotation_matches(c, event))
}

/// Does `text` contain `<marker>: reason` with a non-empty reason?
/// Used for `DEADLINE-CLIPPED:` and `BOUNDED-BY:`.
pub(crate) fn justified_annotation_matches(text: &str, marker: &str) -> bool {
    let mut rest = text;
    while let Some(p) = rest.find(marker) {
        let tail = &rest[p + marker.len()..];
        if tail.trim().len() >= 3 {
            return true;
        }
        rest = tail;
    }
    false
}

/// Is the site at `line` waived by a `<marker> reason` annotation?
pub(crate) fn has_justified_annotation(ctx: &FileCtx<'_>, line: u32, marker: &str) -> bool {
    ctx.annotated_by(line, |c| justified_annotation_matches(c, marker))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_grammar() {
        assert!(resolves_annotation_matches(
            "// RESOLVES(GetReqTx): the cleanup loop abandons every sub-request",
            Some("GetReqTx")
        ));
        // Wrong event.
        assert!(!resolves_annotation_matches(
            "// RESOLVES(PutAcked): wrong pairing",
            Some("GetReqTx")
        ));
        // Empty reason is tampering.
        assert!(!resolves_annotation_matches("// RESOLVES(GetReqTx):", Some("GetReqTx")));
        assert!(!resolves_annotation_matches("// RESOLVES(GetReqTx): x", Some("GetReqTx")));
        // Wildcard event for typed-error sites.
        assert!(resolves_annotation_matches(
            "// RESOLVES(none): no pending entry exists at this site",
            None
        ));
        assert!(!resolves_annotation_matches("// RESOLVES(): missing event", None));
    }

    #[test]
    fn justified_grammar() {
        assert!(justified_annotation_matches(
            "// DEADLINE-CLIPPED: poll quantum, loop checks the op deadline",
            "DEADLINE-CLIPPED:"
        ));
        assert!(!justified_annotation_matches("// DEADLINE-CLIPPED:", "DEADLINE-CLIPPED:"));
        assert!(justified_annotation_matches(
            "// BOUNDED-BY: the retry sweeper drains the map",
            "BOUNDED-BY:"
        ));
        assert!(!justified_annotation_matches("// BOUNDED-BY: ", "BOUNDED-BY:"));
    }
}
