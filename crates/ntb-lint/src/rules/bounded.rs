//! Rule `bounded-wait`: no `loop` / `while` containing a wait or spin
//! without a visible bound.
//!
//! A *waiting loop* is one whose span calls a
//! [`manifest::LOOP_WAIT_CALLS`] name. It passes when the span mentions a
//! bound marker ([`manifest::BOUND_MARKERS`] substrings: a deadline
//! check, retry-budget decrement, shutdown/stop flag, ...). The wait-call
//! names themselves are excluded from marker matching — `wait_until`
//! containing "until" must not self-certify. Otherwise the loop head
//! needs `// BOUNDED-BY: why` (e.g. `set_lock` spinning by OpenSHMEM
//! semantics, or a drain provably bounded by another thread).

use crate::lexer::TokKind;
use crate::rules::{has_justified_annotation, in_bounded_scope};
use crate::{manifest, FileCtx, FileMode, Finding, ScanStats};

pub(crate) fn run(
    ctx: &FileCtx<'_>,
    mode: FileMode,
    out: &mut Vec<Finding>,
    stats: &mut ScanStats,
) {
    if !in_bounded_scope(ctx.file, mode) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && (t.text == "loop" || t.text == "while")) {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        // Loop span: from the keyword to the `}` matching the body `{`
        // (the `while` condition is part of the span, so a bound in the
        // condition counts).
        let Some(open) = body_open(toks, i) else { continue };
        let Some(close) = match_brace_from(toks, open) else { continue };

        let mut waits = false;
        let mut bounded = false;
        for j in i + 1..close {
            let u = &toks[j];
            if u.kind != TokKind::Ident {
                continue;
            }
            let name = u.text.as_str();
            let is_wait_call = manifest::LOOP_WAIT_CALLS.contains(&name)
                && toks.get(j + 1).is_some_and(|v| v.text == "(");
            if is_wait_call {
                waits = true;
                continue;
            }
            if manifest::LOOP_WAIT_CALLS.contains(&name) {
                // A wait-primitive name outside call position still must
                // not self-certify as a bound marker.
                continue;
            }
            let lower = name.to_ascii_lowercase();
            if manifest::BOUND_MARKERS.iter().any(|m| lower.contains(m)) {
                bounded = true;
            }
        }
        if !waits {
            continue;
        }
        stats.loops_checked += 1;
        if bounded || has_justified_annotation(ctx, t.line, "BOUNDED-BY:") {
            continue;
        }
        out.push(Finding {
            file: ctx.file.to_string(),
            line: t.line,
            rule: "bounded-wait",
            message: format!(
                "`{}` containing a wait/spin with no visible bound (deadline check, \
                 retry budget, shutdown flag); add one or justify with `// BOUNDED-BY: why`",
                t.text
            ),
        });
    }
}

/// Token index of the loop body's `{`: the first `{` at delimiter depth 0
/// after the keyword (handles `while let Some(x) = f() {`).
fn body_open(toks: &[crate::lexer::Tok], kw: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(kw + 1) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

fn match_brace_from(toks: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::{scan_source, FileMode, Finding};

    fn findings(src: &str) -> Vec<Finding> {
        scan_source("mem://bounded.rs", src, FileMode::Single)
    }

    #[test]
    fn unbounded_spin_is_flagged() {
        let out = findings("fn f() { loop { std::thread::yield_now(); } }");
        assert!(out.iter().any(|f| f.rule == "bounded-wait"), "{out:?}");
    }

    #[test]
    fn deadline_checked_loop_passes() {
        let ok = "fn f() { loop { if now() > deadline_us { break; } std::thread::yield_now(); } }";
        assert!(findings(ok).iter().all(|f| f.rule != "bounded-wait"));
    }

    #[test]
    fn retry_budget_loop_passes() {
        let ok = "fn f() { while tries < max_retries { sleep(backoff); tries += 1; } }";
        assert!(findings(ok).iter().all(|f| f.rule != "bounded-wait"));
    }

    #[test]
    fn wait_call_name_does_not_self_certify() {
        // `wait_until` contains "until" but is itself the wait. (The loop
        // head sits on its own line so the finding is not deduped away by
        // the same-line deadline-clip hit on the wait itself.)
        let bad = "fn f() {\nloop {\n// DEADLINE-CLIPPED: not the point of this test.\npending.wait_until(id);\n}\n}";
        assert!(findings(bad).iter().any(|f| f.rule == "bounded-wait"), "{:?}", findings(bad));
    }

    #[test]
    fn annotation_with_reason_waives() {
        let ok = "fn f() {\n\
                  // BOUNDED-BY: OpenSHMEM set_lock semantics, blocks until acquired.\n\
                  loop { spin_loop(); }\n\
                  }";
        assert!(findings(ok).iter().all(|f| f.rule != "bounded-wait"));
        let bad = "fn f() {\n// BOUNDED-BY:\nloop { spin_loop(); }\n}";
        assert!(findings(bad).iter().any(|f| f.rule == "bounded-wait"));
    }

    #[test]
    fn non_waiting_loop_is_ignored() {
        let ok = "fn f(v: &[u8]) -> u32 { let mut s = 0; loop { s += v[s as usize] as u32; if s > 9 { break; } } s }";
        assert!(findings(ok).iter().all(|f| f.rule != "bounded-wait"));
    }
}
