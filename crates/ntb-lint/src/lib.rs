//! `ntb-lint` — workspace-native concurrency lint for the NTB/OpenSHMEM
//! workspace.
//!
//! Four rules, all keyed to the paper's ordered shared-state protocol
//! (ScratchPad publish → doorbell → service-thread consume):
//!
//! 1. **safety** — every `unsafe` block / fn / impl carries a
//!    `// SAFETY:` comment explaining the invariant.
//! 2. **atomics** — atomic `Ordering`s are allowlisted per site
//!    (`SeqCst`/`Acquire`/`Release`/`AcqRel`); `Relaxed` requires a
//!    `// lint: relaxed-ok(reason)` annotation, and `use ...::Ordering::Relaxed`
//!    imports are forbidden outright (they hide the ordering at use sites).
//! 3. **unwraps** — no `.unwrap()` / `.expect()` in non-test
//!    `ntb-net` / `shmem-core` code unless annotated
//!    `// lint: unwrap-ok(reason)`.
//! 4. **locks** — every lock acquisition is classified in the
//!    [`manifest::LOCK_SITES`] table, nested acquisitions respect the
//!    declared rank order (or carry `// lint: lock-order-ok(reason)`),
//!    and the runtime lockdep class table stays in sync with the manifest.
//!
//! All rules skip `#[test]` / `#[cfg(test)]` regions. The pass is
//! deliberately dependency-free (hand-rolled lexer, no `syn`): the
//! workspace is vendored-offline and the lint must run anywhere the
//! workspace builds.

pub mod lexer;
pub mod manifest;

use lexer::{lex, Comment, Tok, TokKind};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in (as passed to the scanner).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id: `safety`, `atomics`, `unwraps`, `locks`, `lockdep-sync`.
    pub rule: &'static str,
    /// Human-readable description with the expected annotation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// How path-scoped rules treat the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMode {
    /// Normal workspace scan: the unwraps rule applies only to
    /// `ntb-net/src` and `shmem-core/src`.
    Workspace,
    /// Fixture / single-file mode: every rule applies unconditionally.
    Single,
}

/// Pre-lexed view of one source file shared by all rules.
struct FileCtx<'a> {
    file: &'a str,
    toks: Vec<Tok>,
    /// Lines that contain at least one code token.
    code_lines: HashSet<u32>,
    /// Comment text per start line (multiple comments concatenated).
    comments: HashMap<u32, String>,
    /// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl<'a> FileCtx<'a> {
    fn new(file: &'a str, src: &str) -> Self {
        let (toks, raw_comments) = lex(src);
        let mut comments: HashMap<u32, String> = HashMap::new();
        for Comment { line, text } in raw_comments {
            comments.entry(line).or_default().push_str(&text);
        }
        let code_lines = toks.iter().map(|t| t.line).collect();
        let test_ranges = find_test_ranges(&toks);
        FileCtx { file, toks, code_lines, comments, test_ranges }
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when `needle` appears in a comment on the token's line, on a
    /// contiguous run of comment/blank lines directly above it, or (for
    /// block-opening constructs) on the line just below.
    fn annotated(&self, line: u32, needle: &str) -> bool {
        if self.comments.get(&line).is_some_and(|c| c.contains(needle)) {
            return true;
        }
        // Walk up through comments and blank lines; stop at code.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if let Some(c) = self.comments.get(&l) {
                if c.contains(needle) {
                    return true;
                }
                continue;
            }
            if self.code_lines.contains(&l) {
                break;
            }
            // blank line: keep walking
        }
        // First line inside an opened block (e.g. `unsafe {` + SAFETY below).
        self.comments.get(&(line + 1)).is_some_and(|c| c.contains(needle))
    }
}

/// Token ranges covered by test-only items, as inclusive line spans.
///
/// An item is test-only when introduced by `#[test]`, `#[cfg(test)]`, or a
/// `#[...::test]`-style attribute; the span runs to the end of the item's
/// brace block (or its terminating `;`).
fn find_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // Parse one attribute: # [ ... ].
        let Some((attr_toks, after)) = parse_attr(toks, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test(&attr_toks) {
            i = after;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut j = after;
        while j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "#" {
            match parse_attr(toks, j) {
                Some((_, nj)) => j = nj,
                None => break,
            }
        }
        // Find the item's end: first `;` at depth 0, or the `}` matching
        // the first `{`.
        let mut depth = 0i32;
        let mut end_line = toks.get(j).map_or(start_line, |t| t.line);
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

/// Parse `# [ ... ]` starting at index `i` (which must be `#`); returns the
/// attribute's inner tokens and the index just past the closing `]`.
fn parse_attr(toks: &[Tok], i: usize) -> Option<(Vec<String>, usize)> {
    let mut j = i + 1;
    // Tolerate inner attributes `#![...]`.
    if toks.get(j).is_some_and(|t| t.text == "!") {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.text != "[") {
        return None;
    }
    j += 1;
    let mut depth = 1i32;
    let mut inner = Vec::new();
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    return Some((inner, j + 1));
                }
            }
        }
        inner.push(t.text.clone());
        j += 1;
    }
    None
}

/// Is this attribute a test marker? Catches `test`, `cfg(test)`,
/// `path::test` — but not `cfg(not(test))`.
fn attr_is_test(attr: &[String]) -> bool {
    if attr.iter().any(|t| t == "not") {
        return false;
    }
    match attr.iter().position(|t| t == "test") {
        None => false,
        Some(0) => true,
        Some(p) => {
            // `cfg ( test ...` or `tokio :: test`.
            matches!(attr[p - 1].as_str(), "(" | "," | ":")
        }
    }
}

const ALLOWED_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

/// Rule 1: every non-test `unsafe` carries a SAFETY comment.
fn rule_safety(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.toks {
        if t.kind == TokKind::Ident
            && t.text == "unsafe"
            && !ctx.in_test(t.line)
            && !ctx.annotated(t.line, "SAFETY:")
        {
            out.push(Finding {
                file: ctx.file.to_string(),
                line: t.line,
                rule: "safety",
                message: "`unsafe` without a `// SAFETY:` comment stating the upheld invariant"
                    .into(),
            });
        }
    }
}

/// Rule 2: allowlisted atomic orderings; `Relaxed` needs
/// `// lint: relaxed-ok(reason)`, and importing `Ordering::Relaxed` is
/// forbidden (it hides the ordering at every use site).
fn rule_atomics(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "Ordering") {
            continue;
        }
        // Match `Ordering :: <Variant>`.
        let (Some(c1), Some(c2), Some(v)) = (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
        else {
            continue;
        };
        if c1.text != ":" || c2.text != ":" || v.kind != TokKind::Ident {
            continue;
        }
        if ctx.in_test(v.line) {
            continue;
        }
        if stmt_starts_with_use(toks, i) {
            if v.text == "Relaxed" {
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: v.line,
                    rule: "atomics",
                    message: "importing `Ordering::Relaxed` hides the ordering at use sites; \
                              name `Ordering::Relaxed` explicitly at each load/store"
                        .into(),
                });
            }
            continue;
        }
        if ALLOWED_ORDERINGS.contains(&v.text.as_str()) {
            continue;
        }
        if v.text == "Relaxed" {
            if !ctx.annotated(v.line, "lint: relaxed-ok") {
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: v.line,
                    rule: "atomics",
                    message: "`Ordering::Relaxed` without `// lint: relaxed-ok(reason)`; \
                              protocol state needs an explicit justification for no ordering"
                        .into(),
                });
            }
        } else {
            out.push(Finding {
                file: ctx.file.to_string(),
                line: v.line,
                rule: "atomics",
                message: format!("unknown atomic ordering `{}`", v.text),
            });
        }
    }
}

/// Does the statement containing token `i` start with `use`?
fn stmt_starts_with_use(toks: &[Tok], i: usize) -> bool {
    for j in (0..i).rev() {
        let t = &toks[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return toks.get(j + 1).is_some_and(|t| t.text == "use");
        }
    }
    toks.first().is_some_and(|t| t.text == "use")
}

/// Rule 3: no `.unwrap()` / `.expect(` in non-test ntb-net / shmem-core
/// code without `// lint: unwrap-ok(reason)`.
fn rule_unwraps(ctx: &FileCtx<'_>, mode: FileMode, out: &mut Vec<Finding>) {
    if mode == FileMode::Workspace {
        let norm = ctx.file.replace('\\', "/");
        if !(norm.contains("ntb-net/src/") || norm.contains("shmem-core/src/")) {
            return;
        }
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == ".") {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(m.kind == TokKind::Ident && (m.text == "unwrap" || m.text == "expect")) {
            continue;
        }
        if toks.get(i + 2).is_none_or(|t| t.text != "(") {
            continue;
        }
        if ctx.in_test(m.line) || ctx.annotated(m.line, "lint: unwrap-ok") {
            continue;
        }
        out.push(Finding {
            file: ctx.file.to_string(),
            line: m.line,
            rule: "unwraps",
            message: format!(
                "`.{}()` in non-test code: return a typed `ShmemError`/`NtbError`, \
                 or justify with `// lint: unwrap-ok(reason)`",
                m.text
            ),
        });
    }
}

/// One lock acquisition discovered in the token stream.
struct Acq {
    line: u32,
    receiver: String,
    /// Index of the `.` token, for statement-shape probing.
    dot: usize,
}

/// Rule 4: classified lock sites + intra-function rank ordering, plus the
/// lockdep class-table sync check.
fn rule_locks(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    // Pass A: find acquisitions -> classify.
    let mut acqs: Vec<(Acq, Option<&'static manifest::LockClassDecl>)> = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == ".") {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(m.kind == TokKind::Ident && matches!(m.text.as_str(), "lock" | "read" | "write")) {
            continue;
        }
        // Require an empty argument list: distinguishes RwLock::read()
        // from e.g. Region::read(addr, buf).
        if !(toks.get(i + 2).is_some_and(|t| t.text == "(")
            && toks.get(i + 3).is_some_and(|t| t.text == ")"))
        {
            continue;
        }
        if ctx.in_test(m.line) {
            continue;
        }
        let Some(recv) = (i > 0).then(|| &toks[i - 1]).filter(|t| t.kind == TokKind::Ident) else {
            // `.lock()` on a non-identifier receiver (call result etc.).
            if !ctx.annotated(m.line, "lint: lock-order-ok") {
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: m.line,
                    rule: "locks",
                    message: format!(
                        "`.{}()` on a non-identifier receiver cannot be classified; \
                         bind the lock to a named field/binding listed in LOCK_SITES",
                        m.text
                    ),
                });
            }
            continue;
        };
        let class = manifest::classify(ctx.file, &recv.text);
        if class.is_none() {
            out.push(Finding {
                file: ctx.file.to_string(),
                line: m.line,
                rule: "locks",
                message: format!(
                    "unclassified lock acquisition `{}.{}()`; add a LOCK_SITES entry \
                     (file suffix + receiver -> class) to crates/ntb-lint/src/manifest.rs",
                    recv.text, m.text
                ),
            });
        }
        acqs.push((Acq { line: m.line, receiver: recv.text.clone(), dot: i }, class));
    }

    // Pass B: intra-function ordering. Walk the token stream tracking brace
    // depth; a guard bound by a `let`-containing statement lives until its
    // enclosing block closes, anything else dies at the statement's `;`.
    struct Held {
        rank: u32,
        name: &'static str,
        depth: i32,
        block_scoped: bool,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = 0usize; // token index of current statement start
    let mut acq_iter = acqs.iter().filter(|(_, c)| c.is_some()).peekable();
    for i in 0..toks.len() {
        // Acquisition at this token?
        while let Some((acq, class)) = acq_iter.peek() {
            if acq.dot != i {
                break;
            }
            let class = class.expect("filtered to classified sites");
            let block_scoped = guard_is_block_scoped(toks, stmt_start, acq.dot);
            for h in &held {
                if class.rank <= h.rank && !ctx.annotated(acq.line, "lint: lock-order-ok") {
                    out.push(Finding {
                        file: ctx.file.to_string(),
                        line: acq.line,
                        rule: "locks",
                        message: format!(
                            "lock order violation: acquiring `{}` (class {}, rank {}) while \
                             holding `{}` (rank {}); ranks must strictly increase — \
                             see the LOCK_ORDER manifest",
                            acq.receiver, class.name, class.rank, h.name, h.rank
                        ),
                    });
                }
            }
            held.push(Held { rank: class.rank, name: class.name, depth, block_scoped });
            acq_iter.next();
        }
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" => {
                    depth += 1;
                    stmt_start = i + 1;
                }
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                    stmt_start = i + 1;
                }
                // `,` ends a match arm (and an argument position, where a
                // temporary guard dies with the full expression anyway).
                ";" | "," => {
                    held.retain(|h| h.block_scoped || h.depth < depth);
                    stmt_start = i + 1;
                }
                _ => {}
            }
        }
    }

    // Pass C: lockdep class-table sync. When scanning the runtime lockdep
    // module, every `LockClass { name: "...", rank: N }` literal must match
    // the manifest.
    if ctx.file.replace('\\', "/").ends_with("ntb-net/src/lockdep.rs") {
        for i in 0..toks.len() {
            if !(toks[i].kind == TokKind::Ident && toks[i].text == "LockClass") {
                continue;
            }
            if toks.get(i + 1).is_none_or(|t| t.text != "{") {
                continue;
            }
            let mut name: Option<String> = None;
            let mut rank: Option<u32> = None;
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "}" {
                if toks[j].text == "name" && toks.get(j + 2).map(|t| t.kind) == Some(TokKind::Str) {
                    name = Some(toks[j + 2].text.trim_matches('"').to_string());
                }
                if toks[j].text == "rank" && toks.get(j + 2).map(|t| t.kind) == Some(TokKind::Num) {
                    rank = toks[j + 2].text.parse().ok();
                }
                j += 1;
            }
            if let (Some(name), Some(rank)) = (name, rank) {
                match manifest::class_by_name(&name) {
                    Some(decl) if decl.rank == rank => {}
                    Some(decl) => out.push(Finding {
                        file: ctx.file.to_string(),
                        line: toks[i].line,
                        rule: "lockdep-sync",
                        message: format!(
                            "lockdep class `{}` has rank {} but the LOCK_ORDER manifest says {}",
                            name, rank, decl.rank
                        ),
                    }),
                    None => out.push(Finding {
                        file: ctx.file.to_string(),
                        line: toks[i].line,
                        rule: "lockdep-sync",
                        message: format!(
                            "lockdep class `{}` is not declared in the LOCK_ORDER manifest",
                            name
                        ),
                    }),
                }
            }
        }
    }
}

/// Does a guard acquired at `dot` inside the statement spanning
/// `[start, dot)` live past the statement's terminator?
///
/// - `if let` / `while let` / `match` scrutinee temporaries survive the
///   whole construct under Rust 2021 drop rules, so any guard in the
///   scrutinee is block-scoped even when a chained call consumes it.
/// - A plain `let` block-scopes the guard only when the guard itself is
///   what gets bound: `.lock()` ending the chain (modulo guard-preserving
///   adapters like `unwrap`). A chain that continues past `.lock()`
///   consumes the guard as a temporary, which dies at the `;`.
fn guard_is_block_scoped(toks: &[Tok], start: usize, dot: usize) -> bool {
    let mut saw_let = false;
    for t in &toks[start..dot.min(toks.len())] {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "if" | "while" | "match" => return true,
            "let" => saw_let = true,
            _ => {}
        }
    }
    if !saw_let {
        return false;
    }
    // `.lock ( )` occupies dot..dot+3; inspect what follows the guard.
    let mut j = dot + 4;
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            // `?` propagates without consuming the guard value's identity.
            Some("?") => j += 1,
            Some(".") => {
                // Guard-preserving adapters yield the guard back to the
                // `let`; anything else consumes it as a temporary.
                return toks.get(j + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                });
            }
            _ => return true,
        }
    }
}

/// Lint one source string.
pub fn scan_source(file: &str, src: &str, mode: FileMode) -> Vec<Finding> {
    let ctx = FileCtx::new(file, src);
    let mut out = Vec::new();
    rule_safety(&ctx, &mut out);
    rule_atomics(&ctx, &mut out);
    rule_unwraps(&ctx, mode, &mut out);
    rule_locks(&ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lint one file on disk.
pub fn scan_file(path: &Path, mode: FileMode) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(scan_source(&path.display().to_string(), &src, mode))
}

/// Collect the workspace's lintable `.rs` files: `crates/*/src/**`,
/// skipping `vendor/` (third-party shims), `target/`, test/bench trees and
/// the lint's own fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | "fixtures" | "tests" | "benches") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for f in workspace_files(root)? {
        out.extend(scan_file(&f, FileMode::Workspace)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        scan_source("mem://ntb-net/src/x.rs", src, FileMode::Single)
    }

    #[test]
    fn safety_rule_basics() {
        let bad = "fn f() { unsafe { core::ptr::read(p) } }";
        assert!(findings(bad).iter().any(|f| f.rule == "safety"));
        let good = "fn f() {\n    // SAFETY: p is valid for reads, checked above.\n    unsafe { core::ptr::read(p) }\n}";
        assert!(findings(good).iter().all(|f| f.rule != "safety"));
    }

    #[test]
    fn safety_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { x() } }\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn atomics_rule_basics() {
        assert!(findings("x.load(Ordering::Relaxed);").iter().any(|f| f.rule == "atomics"));
        assert!(findings("x.load(Ordering::SeqCst);").is_empty());
        let annotated =
            "// lint: relaxed-ok(monotonic counter, read only for stats)\nx.load(Ordering::Relaxed);";
        assert!(findings(annotated).is_empty());
        assert!(findings("use std::sync::atomic::Ordering::Relaxed;")
            .iter()
            .any(|f| f.rule == "atomics"));
        assert!(findings("use std::sync::atomic::Ordering;").is_empty());
    }

    #[test]
    fn unwrap_rule_scoping() {
        let src = "fn f() { x.unwrap(); }";
        assert!(findings(src).iter().any(|f| f.rule == "unwraps"));
        // Out-of-scope path in workspace mode.
        let out = scan_source("crates/ntb-sim/src/x.rs", src, FileMode::Workspace);
        assert!(out.iter().all(|f| f.rule != "unwraps"));
        // unwrap_or_default is a different method.
        assert!(findings("fn f() { x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn lock_rule_classification_and_order() {
        // Unclassified receiver.
        let src = "fn f() { self.mystery.lock(); }";
        assert!(findings(src).iter().any(|f| f.rule == "locks"));
        // Correct order low -> high via the fixture classes.
        let ok = "fn f() { let a = low.lock(); let b = high.lock(); }";
        let out = scan_source("fixtures/locks_pass.rs", ok, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
        // Inverted order high -> low.
        let bad = "fn f() { let a = high.lock(); let b = low.lock(); }";
        let out = scan_source("fixtures/locks_fail_order.rs", bad, FileMode::Single);
        assert!(
            out.iter().any(|f| f.rule == "locks" && f.message.contains("violation")),
            "{out:?}"
        );
    }

    #[test]
    fn lock_rule_temporary_guard_released_at_statement_end() {
        // Temporaries do not pin the hierarchy across statements.
        let src = "fn f() { high.lock().push(1); low.lock().push(2); }";
        let out = scan_source("fixtures/locks_pass.rs", src, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_rule_block_scope_release() {
        let src = "fn f() { { let g = high.lock(); } let g2 = low.lock(); }";
        let out = scan_source("fixtures/locks_pass.rs", src, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_rule_let_chain_consumes_guard_but_if_let_pins_it() {
        // `let v = guard-chain;` drops the temporary guard at the `;`.
        let ok = "fn f() { let v = high.lock().get(k); low.lock().push(v); }";
        let out = scan_source("fixtures/locks_pass.rs", ok, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
        // An `if let` scrutinee pins the guard for the whole construct
        // (Rust 2021 temporary-scope rules).
        let bad = "fn f() { if let Some(v) = high.lock().get(k) { low.lock().push(v); } }";
        let out = scan_source("fixtures/locks_fail_order.rs", bad, FileMode::Single);
        assert!(
            out.iter().any(|f| f.rule == "locks" && f.message.contains("violation")),
            "{out:?}"
        );
        // But binding the guard itself stays block-scoped.
        let bad2 = "fn f() { let g = high.lock(); low.lock().push(1); }";
        let out = scan_source("fixtures/locks_fail_order.rs", bad2, FileMode::Single);
        assert!(
            out.iter().any(|f| f.rule == "locks" && f.message.contains("violation")),
            "{out:?}"
        );
    }

    #[test]
    fn annotation_same_line_and_preceding() {
        let same = "x.load(Ordering::Relaxed); // lint: relaxed-ok(counter)";
        assert!(findings(same).is_empty());
        let preceding = "// lint: relaxed-ok(counter)\n// more words\nx.load(Ordering::Relaxed);";
        assert!(findings(preceding).is_empty());
        let blocked = "// lint: relaxed-ok(counter)\nlet y = 1;\nx.load(Ordering::Relaxed);";
        assert!(findings(blocked).iter().any(|f| f.rule == "atomics"));
    }
}
