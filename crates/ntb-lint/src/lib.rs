//! `ntb-lint` — workspace-native static analysis for the NTB/OpenSHMEM
//! workspace.
//!
//! Eight rules, all keyed to the paper's ordered shared-state protocol
//! (ScratchPad publish → doorbell → service-thread consume). Four are
//! token-level hygiene rules, four are function-granular protocol-
//! discipline rules built on the [`parse`] module:
//!
//! 1. **safety** — every `unsafe` block / fn / impl carries a
//!    `// SAFETY:` comment explaining the invariant.
//! 2. **atomics** — atomic `Ordering`s are allowlisted per site
//!    (`SeqCst`/`Acquire`/`Release`/`AcqRel`); `Relaxed` requires a
//!    `// lint: relaxed-ok(reason)` annotation, and `use ...::Ordering::Relaxed`
//!    imports are forbidden outright (they hide the ordering at use sites).
//! 3. **unwraps** — no `.unwrap()` / `.expect()` in non-test
//!    `ntb-net` / `shmem-core` code unless annotated
//!    `// lint: unwrap-ok(reason)`.
//! 4. **locks** — every lock acquisition is classified in the
//!    [`manifest::LOCK_SITES`] table, nested acquisitions respect the
//!    declared rank order (or carry `// lint: lock-order-ok(reason)`),
//!    and the runtime lockdep class table stays in sync with the manifest
//!    (**lockdep-sync**).
//! 5. **resolution** — a function that acquires protocol state (emits a
//!    registered lifecycle event from [`manifest::EVENT_PAIRS`], or
//!    inserts into a pending table per [`manifest::CALL_PAIRS`]) must
//!    reach a paired resolution on every control-flow exit, or carry
//!    `// RESOLVES(<event>): why`.
//! 6. **deadline-clip** — blocking wait primitives must derive their
//!    timeout from a deadline-clipped expression, or carry
//!    `// DEADLINE-CLIPPED: why`.
//! 7. **bounded-wait** — no `loop`/`while` containing a wait/spin without
//!    a deadline check, retry-budget decrement or shutdown flag, or a
//!    `// BOUNDED-BY: why` justification.
//! 8. **typed-error** — constructing a failure variant of the typed error
//!    ladder (`NtbError`/`ShmemError`) must co-occur with pending-entry
//!    resolution in the same function, or carry a `// RESOLVES(..): why`
//!    annotation.
//!
//! All rules skip `#[test]` / `#[cfg(test)]` regions. The pass is
//! deliberately dependency-free (hand-rolled lexer, no `syn`): the
//! workspace is vendored-offline and the lint must run anywhere the
//! workspace builds.

pub mod lexer;
pub mod manifest;
pub mod parse;
mod rules;

use lexer::{lex, Comment, Tok, TokKind};
use parse::FnInfo;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in (as passed to the scanner).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id: `safety`, `atomics`, `unwraps`, `locks`, `lockdep-sync`,
    /// `resolution`, `deadline-clip`, `bounded-wait`, `typed-error`.
    pub rule: &'static str,
    /// Human-readable description with the expected annotation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// How path-scoped rules treat the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMode {
    /// Normal workspace scan: path-scoped rules apply only to their
    /// declared crates (unwraps/resolution/deadline-clip/typed-error to
    /// `ntb-net/src` + `shmem-core/src`, bounded-wait additionally to
    /// `ntb-sim/src`).
    Workspace,
    /// Fixture / single-file mode: every rule applies unconditionally.
    Single,
}

/// Evidence counters from a scan, so a parser regression that silently
/// analyzes nothing fails loudly in the self-scan test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Files scanned.
    pub files: usize,
    /// Functions parsed out of the token streams.
    pub functions: usize,
    /// Acquire sites checked by the resolution rule (events + table inserts).
    pub acquires: usize,
    /// (acquire, exit) pairs checked by the resolution rule.
    pub exits_checked: usize,
    /// Timed-wait call sites checked by the deadline-clip rule.
    pub waits_checked: usize,
    /// Waiting loops checked by the bounded-wait rule.
    pub loops_checked: usize,
    /// Failure-variant constructions checked by the typed-error rule.
    pub errors_checked: usize,
}

impl ScanStats {
    fn absorb(&mut self, other: ScanStats) {
        self.files += other.files;
        self.functions += other.functions;
        self.acquires += other.acquires;
        self.exits_checked += other.exits_checked;
        self.waits_checked += other.waits_checked;
        self.loops_checked += other.loops_checked;
        self.errors_checked += other.errors_checked;
    }
}

impl std::fmt::Display for ScanStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} files, {} functions; {} acquires / {} exits paired, \
             {} waits deadline-checked, {} loops bound-checked, {} error constructions checked",
            self.files,
            self.functions,
            self.acquires,
            self.exits_checked,
            self.waits_checked,
            self.loops_checked,
            self.errors_checked
        )
    }
}

/// Pre-lexed view of one source file shared by all rules.
pub(crate) struct FileCtx<'a> {
    pub(crate) file: &'a str,
    pub(crate) toks: Vec<Tok>,
    /// Lines that contain at least one code token.
    pub(crate) code_lines: HashSet<u32>,
    /// Comment text per start line (multiple comments concatenated).
    pub(crate) comments: HashMap<u32, String>,
    /// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub(crate) test_ranges: Vec<(u32, u32)>,
    /// Parsed functions (protocol-discipline rules).
    pub(crate) fns: Vec<FnInfo>,
}

impl<'a> FileCtx<'a> {
    pub(crate) fn new(file: &'a str, src: &str) -> Self {
        let (toks, raw_comments) = lex(src);
        let mut comments: HashMap<u32, String> = HashMap::new();
        for Comment { line, text } in raw_comments {
            comments.entry(line).or_default().push_str(&text);
        }
        let code_lines = toks.iter().map(|t| t.line).collect();
        let test_ranges = find_test_ranges(&toks);
        let fns = parse::parse_functions(&toks);
        FileCtx { file, toks, code_lines, comments, test_ranges, fns }
    }

    pub(crate) fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when `pred` matches a comment on the token's line, on a
    /// contiguous run of comment/blank lines directly above it, or (for
    /// block-opening constructs) on the line just below.
    pub(crate) fn annotated_by(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        if self.comments.get(&line).is_some_and(|c| pred(c)) {
            return true;
        }
        // Walk up through comments and blank lines; stop at code.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if let Some(c) = self.comments.get(&l) {
                if pred(c) {
                    return true;
                }
                continue;
            }
            if self.code_lines.contains(&l) {
                break;
            }
            // blank line: keep walking
        }
        // First line inside an opened block (e.g. `unsafe {` + SAFETY below).
        self.comments.get(&(line + 1)).is_some_and(|c| pred(c))
    }

    pub(crate) fn annotated(&self, line: u32, needle: &str) -> bool {
        self.annotated_by(line, |c| c.contains(needle))
    }

    /// Innermost parsed function whose body contains token index `i`.
    pub(crate) fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns.iter().filter(|f| f.contains(i)).max_by_key(|f| f.body_open)
    }
}

/// Token ranges covered by test-only items, as inclusive line spans.
///
/// An item is test-only when introduced by `#[test]`, `#[cfg(test)]`, or a
/// `#[...::test]`-style attribute; the span runs to the end of the item's
/// brace block (or its terminating `;`).
fn find_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // Parse one attribute: # [ ... ].
        let Some((attr_toks, after)) = parse_attr(toks, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test(&attr_toks) {
            i = after;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut j = after;
        while j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "#" {
            match parse_attr(toks, j) {
                Some((_, nj)) => j = nj,
                None => break,
            }
        }
        // Find the item's end: first `;` at depth 0, or the `}` matching
        // the first `{`.
        let mut depth = 0i32;
        let mut end_line = toks.get(j).map_or(start_line, |t| t.line);
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

/// Parse `# [ ... ]` starting at index `i` (which must be `#`); returns the
/// attribute's inner tokens and the index just past the closing `]`.
fn parse_attr(toks: &[Tok], i: usize) -> Option<(Vec<String>, usize)> {
    let mut j = i + 1;
    // Tolerate inner attributes `#![...]`.
    if toks.get(j).is_some_and(|t| t.text == "!") {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.text != "[") {
        return None;
    }
    j += 1;
    let mut depth = 1i32;
    let mut inner = Vec::new();
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    return Some((inner, j + 1));
                }
            }
        }
        inner.push(t.text.clone());
        j += 1;
    }
    None
}

/// Is this attribute a test marker? Catches `test`, `cfg(test)`,
/// `path::test` — but not `cfg(not(test))`.
fn attr_is_test(attr: &[String]) -> bool {
    if attr.iter().any(|t| t == "not") {
        return false;
    }
    match attr.iter().position(|t| t == "test") {
        None => false,
        Some(0) => true,
        Some(p) => {
            // `cfg ( test ...` or `tokio :: test`.
            matches!(attr[p - 1].as_str(), "(" | "," | ":")
        }
    }
}

/// Drop lower-precedence findings when several rules fire on the same
/// (file, line): if a line both leaks a pending entry and calls
/// `.unwrap()`, the leak is the story (see [`manifest::RULE_PRECEDENCE`]).
pub fn dedupe(findings: Vec<Finding>) -> Vec<Finding> {
    let mut best: HashMap<(String, u32), usize> = HashMap::new();
    for f in &findings {
        let p = manifest::rule_precedence(f.rule);
        best.entry((f.file.clone(), f.line)).and_modify(|b| *b = (*b).min(p)).or_insert(p);
    }
    findings
        .into_iter()
        .filter(|f| {
            best.get(&(f.file.clone(), f.line))
                .is_none_or(|&b| manifest::rule_precedence(f.rule) == b)
        })
        .collect()
}

/// Lint one source string, returning findings plus evidence counters.
pub fn scan_source_with_stats(file: &str, src: &str, mode: FileMode) -> (Vec<Finding>, ScanStats) {
    let ctx = FileCtx::new(file, src);
    let mut out = Vec::new();
    let mut stats = ScanStats { files: 1, functions: ctx.fns.len(), ..Default::default() };
    rules::safety::run(&ctx, &mut out);
    rules::atomics::run(&ctx, &mut out);
    rules::unwraps::run(&ctx, mode, &mut out);
    rules::locks::run(&ctx, &mut out);
    rules::resolution::run(&ctx, mode, &mut out, &mut stats);
    rules::deadline::run(&ctx, mode, &mut out, &mut stats);
    rules::bounded::run(&ctx, mode, &mut out, &mut stats);
    rules::typederr::run(&ctx, mode, &mut out, &mut stats);
    let mut out = dedupe(out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (out, stats)
}

/// Lint one source string.
pub fn scan_source(file: &str, src: &str, mode: FileMode) -> Vec<Finding> {
    scan_source_with_stats(file, src, mode).0
}

/// Lint one file on disk.
pub fn scan_file(path: &Path, mode: FileMode) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(scan_source(&path.display().to_string(), &src, mode))
}

/// Collect the workspace's lintable `.rs` files: `crates/*/src/**`,
/// skipping `vendor/` (third-party shims), `target/`, test/bench trees and
/// the lint's own fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | "fixtures" | "tests" | "benches") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`, with evidence counters.
pub fn scan_workspace_with_stats(root: &Path) -> std::io::Result<(Vec<Finding>, ScanStats)> {
    let mut out = Vec::new();
    let mut stats = ScanStats::default();
    for f in workspace_files(root)? {
        let src = std::fs::read_to_string(&f)?;
        let (fnd, s) = scan_source_with_stats(&f.display().to_string(), &src, FileMode::Workspace);
        out.extend(fnd);
        stats.absorb(s);
    }
    Ok((out, stats))
}

/// Lint the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(scan_workspace_with_stats(root)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        scan_source("mem://ntb-net/src/x.rs", src, FileMode::Single)
    }

    #[test]
    fn safety_rule_basics() {
        let bad = "fn f() { unsafe { core::ptr::read(p) } }";
        assert!(findings(bad).iter().any(|f| f.rule == "safety"));
        let good = "fn f() {\n    // SAFETY: p is valid for reads, checked above.\n    unsafe { core::ptr::read(p) }\n}";
        assert!(findings(good).iter().all(|f| f.rule != "safety"));
    }

    #[test]
    fn safety_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { x() } }\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn atomics_rule_basics() {
        assert!(findings("x.load(Ordering::Relaxed);").iter().any(|f| f.rule == "atomics"));
        assert!(findings("x.load(Ordering::SeqCst);").is_empty());
        let annotated =
            "// lint: relaxed-ok(monotonic counter, read only for stats)\nx.load(Ordering::Relaxed);";
        assert!(findings(annotated).is_empty());
        assert!(findings("use std::sync::atomic::Ordering::Relaxed;")
            .iter()
            .any(|f| f.rule == "atomics"));
        assert!(findings("use std::sync::atomic::Ordering;").is_empty());
    }

    #[test]
    fn unwrap_rule_scoping() {
        let src = "fn f() { x.unwrap(); }";
        assert!(findings(src).iter().any(|f| f.rule == "unwraps"));
        // Out-of-scope path in workspace mode.
        let out = scan_source("crates/shmem-bench/src/x.rs", src, FileMode::Workspace);
        assert!(out.iter().all(|f| f.rule != "unwraps"));
        // unwrap_or_default is a different method.
        assert!(findings("fn f() { x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn lock_rule_classification_and_order() {
        // Unclassified receiver.
        let src = "fn f() { self.mystery.lock(); }";
        assert!(findings(src).iter().any(|f| f.rule == "locks"));
        // Correct order low -> high via the fixture classes.
        let ok = "fn f() { let a = low.lock(); let b = high.lock(); }";
        let out = scan_source("fixtures/locks_pass.rs", ok, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
        // Inverted order high -> low.
        let bad = "fn f() { let a = high.lock(); let b = low.lock(); }";
        let out = scan_source("fixtures/locks_fail_order.rs", bad, FileMode::Single);
        assert!(
            out.iter().any(|f| f.rule == "locks" && f.message.contains("violation")),
            "{out:?}"
        );
    }

    #[test]
    fn lock_rule_temporary_guard_released_at_statement_end() {
        // Temporaries do not pin the hierarchy across statements.
        let src = "fn f() { high.lock().push(1); low.lock().push(2); }";
        let out = scan_source("fixtures/locks_pass.rs", src, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_rule_block_scope_release() {
        let src = "fn f() { { let g = high.lock(); } let g2 = low.lock(); }";
        let out = scan_source("fixtures/locks_pass.rs", src, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_rule_let_chain_consumes_guard_but_if_let_pins_it() {
        // `let v = guard-chain;` drops the temporary guard at the `;`.
        let ok = "fn f() { let v = high.lock().get(k); low.lock().push(v); }";
        let out = scan_source("fixtures/locks_pass.rs", ok, FileMode::Single);
        assert!(out.is_empty(), "{out:?}");
        // An `if let` scrutinee pins the guard for the whole construct
        // (Rust 2021 temporary-scope rules).
        let bad = "fn f() { if let Some(v) = high.lock().get(k) { low.lock().push(v); } }";
        let out = scan_source("fixtures/locks_fail_order.rs", bad, FileMode::Single);
        assert!(
            out.iter().any(|f| f.rule == "locks" && f.message.contains("violation")),
            "{out:?}"
        );
        // But binding the guard itself stays block-scoped.
        let bad2 = "fn f() { let g = high.lock(); low.lock().push(1); }";
        let out = scan_source("fixtures/locks_fail_order.rs", bad2, FileMode::Single);
        assert!(
            out.iter().any(|f| f.rule == "locks" && f.message.contains("violation")),
            "{out:?}"
        );
    }

    #[test]
    fn annotation_same_line_and_preceding() {
        let same = "x.load(Ordering::Relaxed); // lint: relaxed-ok(counter)";
        assert!(findings(same).is_empty());
        let preceding = "// lint: relaxed-ok(counter)\n// more words\nx.load(Ordering::Relaxed);";
        assert!(findings(preceding).is_empty());
        let blocked = "// lint: relaxed-ok(counter)\nlet y = 1;\nx.load(Ordering::Relaxed);";
        assert!(findings(blocked).iter().any(|f| f.rule == "atomics"));
    }

    #[test]
    fn dedupe_keeps_highest_precedence_rule_per_line() {
        // A failure-variant construction with an `.unwrap()` on the same
        // line: typed-error outranks unwraps, so only typed-error stays.
        let src = "fn f() -> NtbError { NtbError::LinkFailed { attempts: x.unwrap() } }";
        let out = findings(src);
        assert!(out.iter().any(|f| f.rule == "typed-error"), "{out:?}");
        assert!(out.iter().all(|f| f.rule != "unwraps"), "{out:?}");
    }

    #[test]
    fn stats_count_functions() {
        let (_, stats) =
            scan_source_with_stats("mem://x.rs", "fn a() {}\nfn b() {}", FileMode::Single);
        assert_eq!(stats.functions, 2);
        assert_eq!(stats.files, 1);
    }
}
