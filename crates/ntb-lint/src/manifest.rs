//! The declared lock hierarchy (`LOCK_ORDER`) and the site-classification
//! table (`LOCK_SITES`).
//!
//! Every `Mutex`/`RwLock` acquisition site in the workspace's non-test code
//! must be classified here (or the locks rule reports it). Classes carry an
//! integer rank; a thread must acquire locks in strictly increasing rank
//! order. The same table is mirrored at runtime by `ntb_net::lockdep` —
//! the static pass declares the order, lockdep proves the code obeys it.
//!
//! Rank rationale (see DESIGN.md §11 for the full diagram):
//!
//! - Ranks grow "outside-in → inside-out": SHMEM-layer locks rank lowest
//!   because a SHMEM call holds them while descending into ntb-net, and
//!   ntb-net locks rank below ntb-sim locks because the network layer holds
//!   its own state while driving the simulated hardware (mailbox `seq` is
//!   held across the ScratchPad-publish → doorbell-ring sequence, the
//!   paper's Fig. 5 ordered dance).
//! - Observability sinks (`obs`, trace event buffers) rank highest: any
//!   layer may emit an event while holding its own lock, so the sink must
//!   always be acquirable last.
//! - `lockdep-internal` sits above everything — the runtime checker's own
//!   bookkeeping lock is taken inside `track()` while the caller may hold
//!   arbitrary tracked locks.

/// One declared lock class.
#[derive(Debug, Clone, Copy)]
pub struct LockClassDecl {
    /// Stable class name (shared with `ntb_net::lockdep`).
    pub name: &'static str,
    /// Hierarchy rank; acquisitions must be strictly increasing per thread.
    pub rank: u32,
    /// Human rationale, surfaced in `--print-order`.
    pub rationale: &'static str,
}

/// The lock hierarchy, lowest rank (acquired first / outermost) first.
pub const LOCK_ORDER: &[LockClassDecl] = &[
    LockClassDecl {
        name: "bench-serial",
        rank: 1,
        rationale: "benchmark serialization guard; held across a whole bench run, so it must sit below every runtime lock",
    },
    LockClassDecl {
        name: "shmem-amo",
        rank: 10,
        rationale: "symmetric-heap AMO atomicity guard; held across heap read+write+version-bump",
    },
    LockClassDecl {
        name: "shmem-heap",
        rank: 20,
        rationale: "symmetric-heap allocator state; taken under shmem-amo by local_atomic",
    },
    LockClassDecl {
        name: "shmem-version",
        rank: 30,
        rationale: "heap mutation-version counter + condvar; bumped after heap writes, waited on by wait_until",
    },
    LockClassDecl {
        name: "net-delivery",
        rank: 40,
        rationale: "per-node delivery target (RwLock); read on every inbound frame",
    },
    LockClassDecl {
        name: "net-dedup",
        rank: 50,
        rationale: "seen-puts / AMO replay caches; consulted by the service thread which may then forward or emit",
    },
    LockClassDecl {
        name: "net-membership",
        rank: 55,
        rationale: "ring membership view (heartbeat failure detector + gossip); the transmit path pins a read guard across the send to linearize against death declarations, so it ranks below the pending/unacked shards and the mailbox/txring locks",
    },
    LockClassDecl {
        name: "net-pending-shard",
        rank: 60,
        rationale: "one shard of the pending get/AMO completion map; fill_with emits trace events while holding it; shards are never nested with each other",
    },
    LockClassDecl {
        name: "net-unacked-shard",
        rank: 64,
        rationale: "one shard of the unacked-put retry ledger; distinct from pending shards so ack/sweeper interleavings stay cycle-free",
    },
    LockClassDecl {
        name: "net-forward",
        rank: 70,
        rationale: "forwarder job queue; fed by the service thread while it still holds dedup state",
    },
    LockClassDecl {
        name: "net-retry-budget",
        rank: 72,
        rationale: "per-link retransmission token bucket; a leaf held only across the refill arithmetic, ranked above the forward queue because the sweeper meters retries after probing queue depth",
    },
    LockClassDecl {
        name: "net-txring",
        rank: 78,
        rationale: "transmit-ring publish state; held across slot publish -> coalesced doorbell, and the forwarder flushes the ring while holding its queue lock",
    },
    LockClassDecl {
        name: "net-mailbox",
        rank: 80,
        rationale: "TX mailbox sequence lock; held across the ScratchPad publish -> doorbell ring sequence (paper Fig. 5), so it must rank below every sim-side lock",
    },
    LockClassDecl {
        name: "net-admin",
        rank: 90,
        rationale: "node thread registry + error sink; stop() holds it while shutting down sim ports",
    },
    LockClassDecl {
        name: "sim-doorbell",
        rank: 100,
        rationale: "doorbell pending/mask bits; rung by the mailbox while net-mailbox is held",
    },
    LockClassDecl {
        name: "sim-dma-queue",
        rank: 102,
        rationale: "DMA job queue; fed under net-mailbox, drained by DMA workers",
    },
    LockClassDecl {
        name: "sim-dma-state",
        rank: 104,
        rationale: "per-transfer completion state; workers complete a job after releasing the queue",
    },
    LockClassDecl {
        name: "sim-dma-admin",
        rank: 106,
        rationale: "DMA worker-handle registry; shutdown drains the queue before joining",
    },
    LockClassDecl {
        name: "sim-config",
        rank: 108,
        rationale: "PCI config-space command/BAR registers; never nested with each other",
    },
    LockClassDecl {
        name: "sim-bar",
        rank: 110,
        rationale: "BAR translation-window table (RwLock)",
    },
    LockClassDecl {
        name: "sim-timing",
        rank: 112,
        rationale: "link timing model busy-until state",
    },
    LockClassDecl {
        name: "sim-fault",
        rank: 114,
        rationale: "fault-injection link-down state; consulted deep inside port TX paths",
    },
    LockClassDecl {
        name: "sim-aperture",
        rank: 116,
        rationale: "peer read-aperture publication cell; a leaf held only across publish/clear/clone, consulted by the requester's get fast path before any frame is built",
    },
    LockClassDecl {
        name: "obs",
        rank: 120,
        rationale: "trace / observability event sinks; any layer may emit while holding its own lock, so the sink is always acquired last",
    },
    LockClassDecl {
        name: "lockdep-internal",
        rank: 130,
        rationale: "runtime lockdep bookkeeping; taken inside track() while the caller holds arbitrary tracked locks",
    },
];

/// One classified acquisition site: (path suffix, receiver identifier)
/// maps to a class name from [`LOCK_ORDER`].
#[derive(Debug, Clone, Copy)]
pub struct LockSite {
    /// Path suffix matched against the scanned file (uses `/` separators).
    pub file_suffix: &'static str,
    /// Identifier immediately preceding the `.lock()` / `.read()` /
    /// `.write()` call (a field or binding name).
    pub receiver: &'static str,
    /// Class name.
    pub class: &'static str,
}

/// Classification of every known acquisition site, by file and receiver.
pub const LOCK_SITES: &[LockSite] = &[
    // shmem-bench
    LockSite { file_suffix: "shmem-bench/src/lib.rs", receiver: "LOCK", class: "bench-serial" },
    // shmem-core
    LockSite { file_suffix: "shmem-core/src/heap.rs", receiver: "amo_lock", class: "shmem-amo" },
    LockSite { file_suffix: "shmem-core/src/heap.rs", receiver: "inner", class: "shmem-heap" },
    LockSite { file_suffix: "shmem-core/src/heap.rs", receiver: "version", class: "shmem-version" },
    // ntb-net
    LockSite { file_suffix: "ntb-net/src/node.rs", receiver: "delivery", class: "net-delivery" },
    LockSite { file_suffix: "ntb-net/src/node.rs", receiver: "seen_puts", class: "net-dedup" },
    LockSite { file_suffix: "ntb-net/src/node.rs", receiver: "amo_cache", class: "net-dedup" },
    LockSite { file_suffix: "ntb-net/src/node.rs", receiver: "threads", class: "net-admin" },
    LockSite { file_suffix: "ntb-net/src/node.rs", receiver: "errors", class: "net-admin" },
    LockSite { file_suffix: "ntb-net/src/service.rs", receiver: "seen_puts", class: "net-dedup" },
    LockSite { file_suffix: "ntb-net/src/service.rs", receiver: "amo_cache", class: "net-dedup" },
    LockSite {
        file_suffix: "ntb-net/src/membership.rs",
        receiver: "state",
        class: "net-membership",
    },
    // `Membership::read()/write()` wrap `state` with lockdep tracking;
    // accessor methods call them as `self.read()` / `self.write()`.
    LockSite {
        file_suffix: "ntb-net/src/membership.rs",
        receiver: "self",
        class: "net-membership",
    },
    LockSite {
        file_suffix: "ntb-net/src/pending.rs",
        receiver: "inner",
        class: "net-pending-shard",
    },
    LockSite {
        file_suffix: "ntb-net/src/pending.rs",
        receiver: "state",
        class: "net-unacked-shard",
    },
    LockSite { file_suffix: "ntb-net/src/forwarder.rs", receiver: "state", class: "net-forward" },
    LockSite { file_suffix: "ntb-net/src/credit.rs", receiver: "state", class: "net-retry-budget" },
    LockSite { file_suffix: "ntb-net/src/network.rs", receiver: "chaos", class: "net-admin" },
    LockSite { file_suffix: "ntb-net/src/slots.rs", receiver: "state", class: "net-txring" },
    LockSite { file_suffix: "ntb-net/src/mailbox.rs", receiver: "seq", class: "net-mailbox" },
    LockSite { file_suffix: "ntb-net/src/trace.rs", receiver: "events", class: "obs" },
    LockSite {
        file_suffix: "ntb-net/src/lockdep.rs",
        receiver: "STATE",
        class: "lockdep-internal",
    },
    // ntb-sim
    LockSite { file_suffix: "ntb-sim/src/doorbell.rs", receiver: "state", class: "sim-doorbell" },
    LockSite { file_suffix: "ntb-sim/src/dma.rs", receiver: "queue", class: "sim-dma-queue" },
    LockSite { file_suffix: "ntb-sim/src/dma.rs", receiver: "state", class: "sim-dma-state" },
    LockSite { file_suffix: "ntb-sim/src/dma.rs", receiver: "workers", class: "sim-dma-admin" },
    LockSite {
        file_suffix: "ntb-sim/src/config_space.rs",
        receiver: "command",
        class: "sim-config",
    },
    LockSite { file_suffix: "ntb-sim/src/config_space.rs", receiver: "bars", class: "sim-config" },
    LockSite { file_suffix: "ntb-sim/src/bar.rs", receiver: "entries", class: "sim-bar" },
    LockSite {
        file_suffix: "ntb-sim/src/timing.rs",
        receiver: "tx_busy_until",
        class: "sim-timing",
    },
    LockSite { file_suffix: "ntb-sim/src/timing.rs", receiver: "inner", class: "sim-timing" },
    LockSite { file_suffix: "ntb-sim/src/fault.rs", receiver: "down", class: "sim-fault" },
    LockSite { file_suffix: "ntb-sim/src/aperture.rs", receiver: "target", class: "sim-aperture" },
    LockSite { file_suffix: "ntb-sim/src/obs.rs", receiver: "ring", class: "obs" },
    LockSite { file_suffix: "ntb-sim/src/obs.rs", receiver: "r", class: "obs" },
    // Lint self-test fixtures (single-file mode).
    LockSite { file_suffix: "fixtures/locks_pass.rs", receiver: "low", class: "shmem-amo" },
    LockSite { file_suffix: "fixtures/locks_pass.rs", receiver: "high", class: "obs" },
    LockSite { file_suffix: "fixtures/locks_fail_order.rs", receiver: "low", class: "shmem-amo" },
    LockSite { file_suffix: "fixtures/locks_fail_order.rs", receiver: "high", class: "obs" },
];

/// Look up a class declaration by name.
pub fn class_by_name(name: &str) -> Option<&'static LockClassDecl> {
    LOCK_ORDER.iter().find(|c| c.name == name)
}

/// Classify a lock site, preferring the longest matching file suffix.
pub fn classify(file: &str, receiver: &str) -> Option<&'static LockClassDecl> {
    let norm = file.replace('\\', "/");
    LOCK_SITES
        .iter()
        .filter(|s| norm.ends_with(s.file_suffix) && s.receiver == receiver)
        .map(|s| s.class)
        .next()
        .and_then(class_by_name)
}

// ---------------------------------------------------------------------------
// Protocol-discipline tables (resolution pairing, deadline clipping,
// bounded waits, typed-error discipline). See DESIGN.md §16.
// ---------------------------------------------------------------------------

/// One acquire→resolution lifecycle pairing.
///
/// An *acquire* is either a trace-event emit (`obs.emit(EventKind::<X>, ..)`)
/// or a classified protocol-table call (`pending.register(..)`), matched by
/// [`EventPair::acquire_event`] / [`CallPair`]. Every control-flow exit of a
/// function containing an acquire must pass a *resolution* — one of
/// [`EventPair::resolve_events`] emitted, or one of
/// [`EventPair::resolve_calls`] invoked (directly or via a one-level local
/// call) — or carry a `// RESOLVES(<event>): why` annotation.
#[derive(Debug, Clone, Copy)]
pub struct EventPair {
    /// The acquire-side `EventKind` variant.
    pub acquire_event: &'static str,
    /// `EventKind` variants whose emit resolves the acquire.
    pub resolve_events: &'static [&'static str],
    /// Method/function names whose call resolves the acquire (e.g. the
    /// pending-table fail path that emits the abandon internally).
    pub resolve_calls: &'static [&'static str],
}

/// Lifecycle event pairs, straight from the checker's runtime invariants
/// (put resolved exactly-once, AMO exactly-once, get-resolution, credit
/// conservation) — the lint makes invariants 1/2/9/11 *static*.
pub const EVENT_PAIRS: &[EventPair] = &[
    EventPair {
        acquire_event: "PutIssue",
        resolve_events: &["PutAcked", "PutAbandon"],
        resolve_calls: &["ack", "fail", "fail_expired", "fail_dest", "fail_ops_to"],
    },
    EventPair {
        acquire_event: "GetReqTx",
        resolve_events: &["GetDone", "GetAbandon"],
        resolve_calls: &["abandon", "fail_dest", "fail_ops_to", "wait_with_retry_until"],
    },
    EventPair {
        acquire_event: "AmoReqTx",
        resolve_events: &["AmoDone", "AmoAbandon"],
        resolve_calls: &["abandon", "fail_dest", "fail_ops_to", "wait_with_retry_until"],
    },
    EventPair {
        acquire_event: "CreditConsume",
        resolve_events: &["CreditGrant"],
        resolve_calls: &["refund"],
    },
];

/// One classified protocol-table acquire call: `<receiver>.<method>(..)`
/// inserts an entry that must later be resolved by one of `resolutions`.
#[derive(Debug, Clone, Copy)]
pub struct CallPair {
    /// Identifier immediately preceding the `.` (field/binding name).
    pub receiver: &'static str,
    /// The acquiring method.
    pub method: &'static str,
    /// Display name used in findings and `RESOLVES(..)` annotations.
    pub event: &'static str,
    /// Method names that resolve the entry.
    pub resolutions: &'static [&'static str],
}

/// Pending-table insert→resolve pairings (the PR 2 `PutAbandon`-after-ack
/// and PR 6 `fail_expired` shed-without-resolve bugs were both failures of
/// exactly these disciplines).
pub const CALL_PAIRS: &[CallPair] = &[
    CallPair {
        receiver: "pending",
        method: "register",
        event: "pending.register",
        resolutions: &[
            "wait",
            "wait_with_retry",
            "wait_with_retry_until",
            "abandon",
            "fail_dest",
            "fail_ops_to",
            "reset",
        ],
    },
    CallPair {
        receiver: "unacked",
        method: "register",
        event: "unacked.register",
        resolutions: &["ack", "fail", "fail_expired", "fail_dest", "fail_ops_to", "quiet", "reset"],
    },
];

/// Blocking-wait primitives whose timeout argument must be derived from a
/// deadline-clipped expression (rule `deadline-clip`). Matched as a
/// method/function call name.
pub const WAIT_PRIMITIVES: &[&str] = &[
    "recv_timeout",
    "wait_timeout",
    "park_timeout",
    "wait_until",
    "wait_and_clear",
    "wait_doorbell",
    "wait_change",
    "wait_for",
    "spin_for",
    "sleep",
];

/// Identifier substrings that mark a timeout expression as deadline-derived.
/// Deliberately does *not* include bare `timeout` — the PR 6/7 defect class
/// was exactly "used a policy timeout constant instead of clipping to the
/// op deadline".
pub const DEADLINE_IDENTS: &[&str] =
    &["deadline", "until", "remaining", "remain", "expiry", "expires", "clip"];

/// Wait/spin call names that make a `loop`/`while` a *waiting* loop for
/// rule `bounded-wait`.
pub const LOOP_WAIT_CALLS: &[&str] = &[
    "sleep",
    "yield_now",
    "spin_loop",
    "park",
    "park_timeout",
    "spin_for",
    "wait",
    "wait_until",
    "wait_change",
    "wait_for",
    "wait_and_clear",
    "wait_doorbell",
    "recv",
    "recv_timeout",
];

/// Identifier substrings that count as a bound inside a waiting loop:
/// a deadline check, a retry-budget decrement, a shutdown/stop flag.
/// Deliberately does *not* include `attempt` — an attempt counter that only
/// drives backoff (never exits) is not a bound (`set_lock` spins forever by
/// OpenSHMEM semantics and must say so with `// BOUNDED-BY:`).
pub const BOUND_MARKERS: &[&str] = &[
    "deadline",
    "until",
    "remaining",
    "expired",
    "expire",
    "timeout",
    "retries",
    "retry",
    "budget",
    "shutdown",
    "stop",
    "abort",
    "elapsed",
    "max_",
    "is_dead",
    "dead",
    "give_up",
];

/// Failure variants of the typed error ladder whose *construction* must
/// co-occur with pending-entry resolution (rule `typed-error`). These are
/// the variants that mean "an in-flight op is being failed" — constructing
/// one while leaving the pending/unacked entry live is the PR 6
/// `fail_expired` bug shape.
pub const FAIL_VARIANTS: &[&str] = &["LinkFailed", "DeadlineExceeded", "Overloaded", "PeFailed"];

/// Error enums whose variants rule `typed-error` inspects.
pub const ERROR_ENUMS: &[&str] = &["NtbError", "ShmemError"];

/// Method names that resolve protocol state for rule `typed-error`
/// (union of the pairing resolutions plus generic drain/cleanup verbs).
pub const RESOLVER_CALLS: &[&str] = &[
    "abandon",
    "fail",
    "fail_expired",
    "fail_dest",
    "fail_ops_to",
    "ack",
    "quiet",
    "wait_with_retry_until",
    "wait_with_retry",
    "drain",
    "take",
    "remove",
    "reset",
    "clear",
    "refund",
];

/// Rule ids in *descending* precedence order, used to dedupe findings when
/// several rules fire on the same line (satellite: CI output readability).
/// Protocol-discipline rules outrank hygiene rules: if a line both leaks a
/// pending entry and calls `.unwrap()`, the leak is the story.
pub const RULE_PRECEDENCE: &[&str] = &[
    "resolution",
    "deadline-clip",
    "bounded-wait",
    "typed-error",
    "locks",
    "lockdep-sync",
    "safety",
    "atomics",
    "unwraps",
];

/// Precedence index of a rule id (lower = higher precedence; unknown last).
pub fn rule_precedence(rule: &str) -> usize {
    RULE_PRECEDENCE.iter().position(|r| *r == rule).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_strictly_increase() {
        for w in LOCK_ORDER.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} vs {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn every_site_class_is_declared() {
        for s in LOCK_SITES {
            assert!(
                class_by_name(s.class).is_some(),
                "undeclared class {} for {}",
                s.class,
                s.receiver
            );
        }
    }

    #[test]
    fn classify_by_suffix() {
        let c = classify("crates/shmem-core/src/heap.rs", "amo_lock").unwrap();
        assert_eq!(c.name, "shmem-amo");
        assert!(classify("crates/shmem-core/src/heap.rs", "nonesuch").is_none());
    }

    #[test]
    fn every_event_pair_has_resolutions() {
        for p in EVENT_PAIRS {
            assert!(
                !p.resolve_events.is_empty() || !p.resolve_calls.is_empty(),
                "{} has no way to resolve",
                p.acquire_event
            );
        }
        for c in CALL_PAIRS {
            assert!(!c.resolutions.is_empty(), "{} has no way to resolve", c.event);
        }
    }

    #[test]
    fn precedence_is_total_and_unique() {
        for r in RULE_PRECEDENCE {
            assert!(rule_precedence(r) < RULE_PRECEDENCE.len(), "{r} missing from precedence");
        }
        let mut seen = std::collections::HashSet::new();
        for r in RULE_PRECEDENCE {
            assert!(seen.insert(*r), "duplicate rule id {r}");
        }
        assert_eq!(rule_precedence("no-such-rule"), usize::MAX);
    }

    #[test]
    fn timeout_is_not_a_deadline_ident() {
        // "timeout" deliberately does not certify a wait as clipped: a
        // fixed `Duration` named `timeout` is exactly the bug shape the
        // deadline-clip rule exists to catch.
        assert!(!DEADLINE_IDENTS.contains(&"timeout"));
    }
}
