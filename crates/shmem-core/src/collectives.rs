//! Collective operations: broadcast, reductions, collect, all-to-all.
//!
//! §II-B lists broadcasts and reductions among the essential SHMEM
//! features. On the switchless ring they are built from the primitives
//! the paper implements — put, get and the ring barrier — in the
//! simplest correct shape: data moves with puts, and the barrier provides
//! the entry/exit synchronization the OpenSHMEM collectives specify over
//! their active set (here always the full world, as in the paper).
//!
//! Under a degraded membership (a PE confirmed dead by the heartbeat
//! detector) the data-movement loops address the **live** PEs only, or
//! the collective fails fast with `PeFailed`, per
//! [`DegradedPolicy`](crate::config::DegradedPolicy). Dead PEs' slots in
//! gathered results keep whatever the local copy last held (zero for
//! `calloc`-ed scratch), and reductions combine live contributions only.

use crate::config::DegradedPolicy;
use crate::ctx::ShmemCtx;
use crate::error::{Result, ShmemError};
use crate::symmetric::TypedSym;
use crate::types::ShmemScalar;

/// Reduction operators (`shmem_TYPE_{sum,prod,min,max}_reduce`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum.
    Sum,
    /// Product.
    Prod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Scalars that support the arithmetic reductions.
pub trait ShmemReduce: ShmemScalar {
    /// Combine two values under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;

    /// The identity element of `op`.
    fn identity(op: ReduceOp) -> Self;
}

macro_rules! impl_reduce_int {
    ($($t:ty),*) => {$(
        impl ShmemReduce for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }

            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0,
                    ReduceOp::Prod => 1,
                    ReduceOp::Min => <$t>::MAX,
                    ReduceOp::Max => <$t>::MIN,
                }
            }
        }
    )*};
}

macro_rules! impl_reduce_float {
    ($($t:ty),*) => {$(
        impl ShmemReduce for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }

            fn identity(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Prod => 1.0,
                    ReduceOp::Min => <$t>::INFINITY,
                    ReduceOp::Max => <$t>::NEG_INFINITY,
                }
            }
        }
    )*};
}

impl_reduce_int!(u8, u16, u32, u64, i8, i16, i32, i64);
impl_reduce_float!(f32, f64);

impl ShmemCtx {
    /// The PE set a world collective addresses: every PE on a
    /// full-strength ring; under a degraded membership, the live PEs
    /// (policy [`DegradedPolicy::Degrade`]) or
    /// [`ShmemError::PeFailed`] (policy [`DegradedPolicy::Fail`]).
    pub(crate) fn collective_peers(&self) -> Result<Vec<usize>> {
        let n = self.num_pes();
        let view = self.node.membership().view();
        let live = view.live_pes(n);
        if live.len() == n || self.cfg.degraded_policy == DegradedPolicy::Degrade {
            return Ok(live);
        }
        let pe = (0..n).find(|&p| !view.is_live(p)).unwrap_or(0);
        // RESOLVES(none): membership policy gate before the collective
        // communicates — nothing is in flight for this op yet.
        Err(ShmemError::PeFailed { pe, epoch: view.epoch })
    }

    /// `shmem_broadcast`: replicate `count` elements starting at `index`
    /// of `root`'s copy of `sym` into every other PE's copy. Collective.
    pub fn broadcast<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        root: usize,
    ) -> Result<()> {
        self.check_pe(root)?;
        if !self.is_pe_live(root) {
            // No policy can help: the data source itself is gone.
            // RESOLVES(none): pre-flight check, before any put is issued.
            return Err(ShmemError::PeFailed { pe: root, epoch: self.membership_epoch() });
        }
        let peers = self.collective_peers()?;
        // Entry barrier: everyone's buffers are ready to be overwritten.
        self.barrier_all()?;
        if self.my_pe() == root {
            let data = self.read_local_slice(sym, index, count)?;
            for pe in peers {
                if pe != root {
                    self.put_slice(sym, index, &data, pe)?;
                }
            }
        }
        // Exit barrier: broadcast data visible everywhere.
        self.barrier_all()
    }

    /// `shmem_fcollect`: concatenate each PE's `src` block into every
    /// PE's copy of `dest` at slot `my_pe`. `dest.count()` must equal
    /// `num_pes * src.len()`. Collective.
    pub fn fcollect<T: ShmemScalar>(&self, dest: &TypedSym<T>, src: &[T]) -> Result<()> {
        let n = self.num_pes();
        if dest.count() != n * src.len() {
            return Err(ShmemError::Runtime("fcollect: dest.count() != num_pes * src.len()"));
        }
        let peers = self.collective_peers()?;
        self.barrier_all()?;
        let slot = self.my_pe() * src.len();
        self.write_local_slice(dest, slot, src)?;
        for pe in peers {
            if pe != self.my_pe() {
                self.put_slice(dest, slot, src, pe)?;
            }
        }
        self.barrier_all()
    }

    /// `shmem_alltoall`: PE *i*'s block *j* of `src` lands in PE *j*'s
    /// `dest` at slot *i*. Both arrays hold `num_pes * block` elements.
    /// Collective.
    pub fn alltoall<T: ShmemScalar>(
        &self,
        dest: &TypedSym<T>,
        src: &[T],
        block: usize,
    ) -> Result<()> {
        let n = self.num_pes();
        if src.len() != n * block || dest.count() != n * block {
            return Err(ShmemError::Runtime("alltoall: arrays must hold num_pes * block elements"));
        }
        let peers = self.collective_peers()?;
        self.barrier_all()?;
        let me = self.my_pe();
        for pe in peers {
            let chunk = &src[pe * block..(pe + 1) * block];
            if pe == me {
                self.write_local_slice(dest, me * block, chunk)?;
            } else {
                self.put_slice(dest, me * block, chunk, pe)?;
            }
        }
        self.barrier_all()
    }

    /// All-reduce `src` element-wise under `op`; every PE gets the full
    /// result.
    ///
    /// ```
    /// use shmem_core::{ReduceOp, ShmemConfig, ShmemWorld};
    /// let sums = ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(4), |ctx| {
    ///     ctx.allreduce(ReduceOp::Sum, &[ctx.my_pe() as u64, 1]).unwrap()
    /// })
    /// .unwrap();
    /// assert!(sums.iter().all(|v| v == &[6, 4]));
    /// ```
    ///
    /// Implemented as an fcollect into internal symmetric scratch
    /// followed by a local combine (the gather-then-reduce shape the
    /// paper's primitives support directly). Collective.
    pub fn allreduce<T: ShmemReduce>(&self, op: ReduceOp, src: &[T]) -> Result<Vec<T>> {
        let n = self.num_pes();
        // Only live PEs contribute; a dead PE's scratch slot would hold
        // stale bytes, so it must not be folded into the result.
        let contributors = self.collective_peers()?;
        // Collective allocation is safe: all (live) PEs execute the same
        // call.
        let scratch: TypedSym<T> = self.malloc_array(n * src.len())?;
        let result = (|| {
            self.fcollect(&scratch, src)?;
            let all = self.read_local_slice(&scratch, 0, n * src.len())?;
            let mut out = vec![T::identity(op); src.len()];
            for pe in contributors {
                for (i, item) in out.iter_mut().enumerate() {
                    *item = T::combine(op, *item, all[pe * src.len() + i]);
                }
            }
            Ok(out)
        })();
        self.free_array(scratch)?;
        result
    }

    /// Ring-pipelined broadcast: the natural broadcast for the switchless
    /// topology. Instead of the root issuing N-1 puts (all of which leave
    /// through the root's two adapters), the payload travels **once**
    /// around the ring: the root puts to its right neighbour with a
    /// signal; each PE waits for the signal, forwards to *its* right
    /// neighbour, and is done. Per-PE link work is constant, so large
    /// broadcasts scale with the ring instead of bottlenecking the root.
    /// Collective (allocates an internal signal word).
    pub fn broadcast_ring<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        root: usize,
    ) -> Result<()> {
        use crate::signal::SignalOp;
        use crate::sync::CmpOp;
        self.check_pe(root)?;
        let n = self.num_pes();
        if self.collective_peers()?.len() < n {
            // The pipeline is structural (every PE forwards to its right
            // neighbour), so a dead PE breaks it; fall back to the flat
            // root-fanout broadcast over the live membership.
            return self.broadcast(sym, index, count, root);
        }
        let sig: TypedSym<u64> = self.calloc_array(1)?; // collective + entry sync
        let result = (|| {
            if n == 1 {
                return Ok(());
            }
            let me = self.my_pe();
            let right = (me + 1) % n;
            // Rank positions along the pipeline, starting at the root.
            let rank = (me + n - root) % n;
            if rank == 0 {
                let data = self.read_local_slice(sym, index, count)?;
                self.put_with_signal(sym, index, &data, &sig, 0, 1u64, SignalOp::Set, right)?;
            } else {
                self.signal_wait_until(&sig, 0, CmpOp::Eq, 1u64)?;
                if rank + 1 < n {
                    // Forward the (now local) payload down the pipeline.
                    let data = self.read_local_slice(sym, index, count)?;
                    self.put_with_signal(sym, index, &data, &sig, 0, 1u64, SignalOp::Set, right)?;
                }
            }
            Ok(())
        })();
        // Exit sync doubles as the signal-word teardown barrier.
        self.free_array(sig)?;
        result
    }

    /// `shmem_collect`: concatenate *variable-length* per-PE
    /// contributions in PE order into every PE's copy of `dest`.
    /// `dest.count()` must be at least the global total. Returns the
    /// total number of collected elements. Collective (exchanges sizes
    /// through an internal symmetric array first).
    pub fn collect<T: ShmemScalar>(&self, dest: &TypedSym<T>, src: &[T]) -> Result<usize> {
        let n = self.num_pes();
        // Phase 1: everyone learns everyone's contribution size.
        let sizes: TypedSym<u64> = self.calloc_array(n)?;
        let result = (|| {
            self.fcollect(&sizes, &[src.len() as u64])?;
            let all_sizes = self.read_local_slice::<u64>(&sizes, 0, n)?;
            let total: u64 = all_sizes.iter().sum();
            if total as usize > dest.count() {
                return Err(ShmemError::Runtime("collect: dest too small for the global total"));
            }
            let my_off: u64 = all_sizes[..self.my_pe()].iter().sum();
            // Phase 2: everyone places its block at its prefix offset on
            // every (live) PE. A dead PE's size slot stayed zero in the
            // fcollect, so it contributes nothing to the offsets.
            self.write_local_slice(dest, my_off as usize, src)?;
            for pe in self.collective_peers()? {
                if pe != self.my_pe() {
                    self.put_slice(dest, my_off as usize, src, pe)?;
                }
            }
            self.barrier_all()?;
            Ok(total as usize)
        })();
        self.free_array(sizes)?;
        result
    }

    /// Reduce to `root` only (other PEs get `None`). Collective.
    pub fn reduce_to_root<T: ShmemReduce>(
        &self,
        op: ReduceOp,
        src: &[T],
        root: usize,
    ) -> Result<Option<Vec<T>>> {
        self.check_pe(root)?;
        let full = self.allreduce(op, src)?;
        Ok((self.my_pe() == root).then_some(full))
    }

    /// Binomial-tree broadcast: log₂N rounds instead of the flat root
    /// fan-out. Round *k* doubles the set of PEs holding the payload:
    /// every holder with tree rank `r` sends to rank `r + 2^k` (for
    /// `2^k > r`), so the root's adapters stop being the bottleneck and
    /// latency grows with the tree depth, not the PE count. Ranks are
    /// positions in the **live** PE list rotated so the root is rank 0,
    /// which honours [`DegradedPolicy`](crate::config::DegradedPolicy)
    /// exactly like the flat [`Self::broadcast`]. Collective (allocates
    /// an internal signal word).
    pub fn broadcast_tree<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        root: usize,
    ) -> Result<()> {
        use crate::signal::SignalOp;
        use crate::sync::CmpOp;
        self.check_pe(root)?;
        if !self.is_pe_live(root) {
            // No policy can help: the data source itself is gone.
            // RESOLVES(none): pre-flight check, before any put is issued.
            return Err(ShmemError::PeFailed { pe: root, epoch: self.membership_epoch() });
        }
        let peers = self.collective_peers()?;
        let sig: TypedSym<u64> = self.calloc_array(1)?; // collective + entry sync
        let result = (|| {
            let m = peers.len();
            // lint: unwrap-ok(the root passed the liveness gate above, so
            // it is present in the live list)
            let root_idx = peers.iter().position(|&p| p == root).unwrap();
            let Some(pos) = peers.iter().position(|&p| p == self.my_pe()) else {
                // Not in the live set (mid-rejoin): sit the data phase
                // out; the alloc/free barriers still synchronize us.
                return Ok(());
            };
            let rank = (pos + m - root_idx) % m;
            if rank != 0 {
                self.signal_wait_until(&sig, 0, CmpOp::Eq, 1u64)?;
            }
            let data = self.read_local_slice(sym, index, count)?;
            let mut step = 1usize;
            while step < m {
                if step > rank && rank + step < m {
                    let dest = peers[(root_idx + rank + step) % m];
                    self.put_with_signal(sym, index, &data, &sig, 0, 1u64, SignalOp::Set, dest)?;
                }
                step <<= 1;
            }
            Ok(())
        })();
        // Exit sync doubles as the signal-word teardown barrier.
        self.free_array(sig)?;
        result
    }

    /// Binomial-tree reduction to `root` (other PEs get `None`): log₂N
    /// combining rounds, each PE sends its partial exactly once to its
    /// tree parent. Dead PEs are excluded from the tree entirely (their
    /// contribution is dropped, like [`Self::allreduce`]). Collective
    /// (allocates internal scratch).
    pub fn reduce_tree<T: ShmemReduce>(
        &self,
        op: ReduceOp,
        src: &[T],
        root: usize,
    ) -> Result<Option<Vec<T>>> {
        use crate::signal::SignalOp;
        use crate::sync::CmpOp;
        self.check_pe(root)?;
        if !self.is_pe_live(root) {
            // RESOLVES(none): pre-flight check, before any put is issued.
            return Err(ShmemError::PeFailed { pe: root, epoch: self.membership_epoch() });
        }
        let peers = self.collective_peers()?;
        let len = src.len();
        let rounds = peers.len().next_power_of_two().trailing_zeros() as usize;
        // Per-round landing slots: the child of round k writes its partial
        // into slot k of its parent, so rounds never alias each other.
        let scratch: TypedSym<T> = self.calloc_array(len * rounds.max(1))?;
        let sig: TypedSym<u64> = self.calloc_array(rounds.max(1))?;
        let result = (|| {
            let m = peers.len();
            // lint: unwrap-ok(the root passed the liveness gate above, so
            // it is present in the live list)
            let root_idx = peers.iter().position(|&p| p == root).unwrap();
            let Some(pos) = peers.iter().position(|&p| p == self.my_pe()) else {
                return Ok(None);
            };
            let rank = (pos + m - root_idx) % m;
            let mut acc = src.to_vec();
            for k in 0..rounds {
                let step = 1usize << k;
                if rank & step != 0 {
                    // My turn to fold into the parent and retire.
                    let parent = peers[(root_idx + rank - step) % m];
                    self.put_with_signal(
                        &scratch,
                        k * len,
                        &acc,
                        &sig,
                        k,
                        1u64,
                        SignalOp::Set,
                        parent,
                    )?;
                    break;
                }
                if rank + step < m {
                    self.signal_wait_until(&sig, k, CmpOp::Eq, 1u64)?;
                    let part = self.read_local_slice(&scratch, k * len, len)?;
                    for (a, b) in acc.iter_mut().zip(part) {
                        *a = T::combine(op, *a, b);
                    }
                }
            }
            Ok((rank == 0).then_some(acc))
        })();
        self.free_array(sig)?;
        self.free_array(scratch)?;
        result
    }

    /// Log-depth all-reduce: a binomial [`Self::reduce_tree`] to the
    /// lowest live PE followed by a [`Self::broadcast_tree`] of the
    /// result — 2·log₂N rounds total, versus the linear gather of
    /// [`Self::allreduce`]. Collective (allocates internal scratch).
    pub fn allreduce_tree<T: ShmemReduce>(&self, op: ReduceOp, src: &[T]) -> Result<Vec<T>> {
        let peers = self.collective_peers()?;
        // lint: unwrap-ok(the calling PE is alive, so the live list is
        // never empty)
        let root = *peers.first().unwrap();
        let reduced = self.reduce_tree(op, src, root)?;
        let scratch: TypedSym<T> = self.calloc_array(src.len())?;
        let result = (|| {
            if let Some(v) = &reduced {
                self.write_local_slice(&scratch, 0, v)?;
            }
            self.broadcast_tree(&scratch, 0, src.len(), root)?;
            self.read_local_slice(&scratch, 0, src.len())
        })();
        self.free_array(scratch)?;
        result
    }

    /// Convenience: broadcast one value from `root` to every PE and
    /// return it. Collective (allocates internal scratch).
    pub fn broadcast_value<T: ShmemScalar>(&self, value: T, root: usize) -> Result<T> {
        let scratch: TypedSym<T> = self.malloc_array(1)?;
        let result = (|| {
            if self.my_pe() == root {
                self.write_local(&scratch, 0, value)?;
            }
            self.broadcast(&scratch, 0, 1, root)?;
            self.read_local(&scratch, 0)
        })();
        self.free_array(scratch)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_combine() {
        assert_eq!(i32::combine(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(i32::combine(ReduceOp::Prod, 3, 4), 12);
        assert_eq!(i32::combine(ReduceOp::Min, 3, 4), 3);
        assert_eq!(i32::combine(ReduceOp::Max, 3, 4), 4);
        assert_eq!(u8::combine(ReduceOp::Sum, 255, 1), 0, "wrapping");
    }

    #[test]
    fn float_combine() {
        assert_eq!(f64::combine(ReduceOp::Sum, 1.5, 2.5), 4.0);
        assert_eq!(f64::combine(ReduceOp::Min, -1.0, 2.0), -1.0);
    }

    #[test]
    fn identities_are_neutral() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
            for v in [-5i64, 0, 42] {
                assert_eq!(i64::combine(op, i64::identity(op), v), v, "{op:?} identity on {v}");
            }
            for v in [-1.5f64, 0.0, 3.25] {
                assert_eq!(f64::combine(op, f64::identity(op), v), v, "{op:?} identity on {v}");
            }
        }
    }
}
