//! `shmem_barrier_all`: the two-round ring sweep of paper Fig. 6.
//!
//! The centralized-counter barrier needs shared memory every host can
//! reach, which the switchless ring does not have; the paper instead
//! circulates two doorbell sweeps:
//!
//! 1. **start sweep** — host 0 rings `BARRIER_START` on host 1; every
//!    other host waits for start from its left, then rings start on its
//!    right. The sweep returning to host 0 proves every host reached the
//!    barrier.
//! 2. **end sweep** — host 0 rings `BARRIER_END` rightward and releases;
//!    each host releases when end arrives from its left and passes it on.
//!    Host 0 finally consumes the end signal returning from host N-1,
//!    leaving the doorbell registers clean for the next barrier.
//!
//! Before signalling, each PE drains its outstanding puts (`quiet`) — the
//! paper's "first checked if previous DMA data transfer for Put or Get has
//! been completed" — which is what gives the barrier its memory-ordering
//! semantics.
//!
//! ## Failure behaviour (DESIGN.md §13)
//!
//! Both algorithms consult the heartbeat failure detector:
//!
//! - A barrier **entered** while the membership is degraded either fails
//!   fast with [`ShmemError::PeFailed`] or runs a dissemination barrier
//!   over the live PEs, per [`DegradedPolicy`].
//! - A death **during** a barrier is surfaced as `PeFailed` from the
//!   stalled wait (the waits are sliced so the detector is polled every
//!   [`MEMBERSHIP_POLL`]), well before the full barrier timeout. The
//!   in-flight barrier always fails — survivors retry it, and the retry
//!   resolves under the entry rule above.
//! - A timeout names its culprit: the error carries the [`BarrierPhase`]
//!   that stalled and the neighbour PE whose signal never arrived, and a
//!   `BarrierStall` trace event records the same pair.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use ntb_net::{MembershipView, RouteDirection};
use ntb_sim::{EventKind, OpClass};

use crate::config::{BarrierAlgorithm, DegradedPolicy};
use crate::ctx::ShmemCtx;
use crate::error::{Result, ShmemError};
use crate::sync::CmpOp;

/// How often a blocked barrier wait re-polls the failure detector, so a
/// PE dying mid-barrier surfaces as [`ShmemError::PeFailed`] in bounded
/// time instead of the full barrier timeout.
const MEMBERSHIP_POLL: Duration = Duration::from_millis(50);

/// Which part of the barrier protocol a stall or timeout happened in.
/// Carried by [`ShmemError::BarrierTimeout`] and encoded into the
/// `BarrierStall` trace event payload via [`code`](Self::code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierPhase {
    /// Ring sweep: waiting for the barrier-start doorbell from the left.
    StartSweep,
    /// Ring sweep: waiting for the barrier-end doorbell from the left.
    EndSweep,
    /// Dissemination: waiting for the round-*k* flag put.
    Round(u32),
}

impl BarrierPhase {
    /// Stable numeric encoding for trace payloads: 0 = start sweep,
    /// 1 = end sweep, 2+k = dissemination round k.
    pub fn code(&self) -> u64 {
        match self {
            BarrierPhase::StartSweep => 0,
            BarrierPhase::EndSweep => 1,
            BarrierPhase::Round(k) => 2 + u64::from(*k),
        }
    }
}

impl std::fmt::Display for BarrierPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierPhase::StartSweep => write!(f, "start sweep"),
            BarrierPhase::EndSweep => write!(f, "end sweep"),
            BarrierPhase::Round(k) => write!(f, "dissemination round {k}"),
        }
    }
}

impl ShmemCtx {
    /// Synchronize all PEs and complete all outstanding memory updates
    /// (`shmem_barrier_all`).
    pub fn barrier_all(&self) -> Result<()> {
        self.barrier_all_with_timeout(self.cfg.barrier_timeout)
    }

    /// `barrier_all` with an explicit timeout.
    pub fn barrier_all_with_timeout(&self, timeout: Duration) -> Result<()> {
        // The ring sweep addresses neighbours by ring direction, which
        // only exist on shapes where host i±1 is cabled (ring, clique); a
        // torus upgrades to the shape-agnostic dissemination barrier.
        let ring_capable = matches!(
            self.node.topology_kind().shape(),
            ntb_net::Shape::Ring | ntb_net::Shape::Clique
        );
        match self.cfg.barrier_algorithm {
            BarrierAlgorithm::RingSweep if ring_capable => self.barrier_ring_sweep(timeout),
            BarrierAlgorithm::RingSweep | BarrierAlgorithm::Dissemination => {
                self.barrier_dissemination(timeout)
            }
        }
    }

    /// Allocate the next trace epoch and emit `BarrierStart`. Barriers
    /// are collective and called in the same order on every PE, so the
    /// per-PE count of *successful* barriers names the same barrier
    /// everywhere — the checker's barrier invariant groups events by it.
    /// A failed attempt surrenders its epoch via
    /// [`barrier_trace_retire`](Self::barrier_trace_retire), so the retry
    /// re-enters the same epoch no matter how many attempts each PE
    /// needed (the checker accepts re-entry of an epoch a PE never
    /// completed).
    fn barrier_trace_enter(&self) -> u64 {
        // lint: relaxed-ok(monotonic trace-epoch allocation; collective call order names the
        // barrier, not this counter's memory ordering)
        let epoch = self.barrier_trace_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let obs = self.node.obs();
        if obs.is_enabled() {
            obs.emit(EventKind::BarrierStart, epoch, [self.num_pes() as u64, 0]);
        }
        epoch
    }

    /// Surrender a failed attempt's trace epoch (see
    /// [`barrier_trace_enter`](Self::barrier_trace_enter)).
    fn barrier_trace_retire(&self) {
        // lint: relaxed-ok(single app thread per ctx; pairs with the enter above)
        self.barrier_trace_epoch.fetch_sub(1, Ordering::Relaxed);
    }

    fn barrier_trace_exit(&self, epoch: u64, t0: Instant) {
        let obs = self.node.obs();
        if obs.is_enabled() {
            self.node.metrics().record_op(OpClass::Barrier, t0.elapsed().as_micros() as u64);
            obs.emit(EventKind::BarrierEnd, epoch, [0, 0]);
        }
    }

    /// Emit a `BarrierStall` event: this PE is giving up on the barrier,
    /// and `waiting_on` is the neighbour whose `phase` signal it lacked.
    fn barrier_stall(&self, trace_epoch: u64, waiting_on: usize, phase: BarrierPhase) {
        let obs = self.node.obs();
        if obs.is_enabled() {
            obs.emit(EventKind::BarrierStall, trace_epoch, [waiting_on as u64, phase.code()]);
        }
    }

    /// The membership view, if it is missing anyone.
    fn degraded_view(&self) -> Option<MembershipView> {
        let view = self.node.membership().view();
        (view.live_count(self.num_pes()) < self.num_pes()).then_some(view)
    }

    /// First dead PE of `view` (the one named in `PeFailed`).
    fn first_dead(&self, view: &MembershipView) -> usize {
        (0..self.num_pes()).find(|&p| !view.is_live(p)).unwrap_or(0)
    }

    /// The paper's Fig. 6 algorithm: start sweep + end sweep of doorbells
    /// around the ring.
    pub fn barrier_ring_sweep(&self, timeout: Duration) -> Result<()> {
        let t0 = Instant::now();
        let epoch = self.barrier_trace_enter();
        let r = self.ring_sweep_inner(epoch, t0, timeout);
        if r.is_err() {
            self.barrier_trace_retire();
        }
        r
    }

    fn ring_sweep_inner(&self, epoch: u64, t0: Instant, timeout: Duration) -> Result<()> {
        // Complete this PE's outstanding communication first.
        self.quiet()?;
        if self.num_pes() == 1 {
            self.barrier_trace_exit(epoch, t0);
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        if let Some(view) = self.degraded_view() {
            // The doorbell sweep is structural — it cannot route around a
            // dead host — so a degraded ring synchronizes by
            // dissemination over the live PEs instead (or refuses).
            return self.barrier_degraded(epoch, t0, deadline, view);
        }

        if self.my_pe() == 0 {
            // Initiate the start sweep.
            self.node.send_barrier(RouteDirection::Right, true)?;
            // Wait for it to come around the ring.
            self.wait_sweep(true, deadline, epoch)?;
            if self.node.obs().is_enabled() {
                // Start sweep complete: every PE has entered the barrier.
                self.node.obs().emit(EventKind::BarrierRound, epoch, [0, 0]);
            }
            // Initiate the end sweep.
            self.node.send_barrier(RouteDirection::Right, false)?;
            // Consume the end signal returning from host N-1 so the
            // doorbell register is clean for the next barrier.
            self.wait_sweep(false, deadline, epoch)?;
        } else {
            // Wait for start from the left, pass it right.
            self.wait_sweep(true, deadline, epoch)?;
            self.node.send_barrier(RouteDirection::Right, true)?;
            // Wait for end from the left, pass it right, release.
            self.wait_sweep(false, deadline, epoch)?;
            if self.node.obs().is_enabled() {
                // The end sweep reaching this PE proves the start sweep
                // closed the ring: every PE has entered.
                self.node.obs().emit(EventKind::BarrierRound, epoch, [0, 0]);
            }
            self.node.send_barrier(RouteDirection::Right, false)?;
        }
        self.barrier_trace_exit(epoch, t0);
        Ok(())
    }

    /// Wait for a sweep doorbell from the left neighbour in slices,
    /// polling the failure detector between slices so a mid-barrier death
    /// anywhere in the ring fails the wait promptly.
    fn wait_sweep(&self, start: bool, deadline: Instant, trace_epoch: u64) -> Result<()> {
        let phase = if start { BarrierPhase::StartSweep } else { BarrierPhase::EndSweep };
        let n = self.num_pes();
        let left = (self.my_pe() + n - 1) % n;
        loop {
            let slice = MEMBERSHIP_POLL.min(deadline.saturating_duration_since(Instant::now()));
            if !slice.is_zero() && self.node.wait_barrier(RouteDirection::Left, start, slice)? {
                return Ok(());
            }
            if let Some(view) = self.degraded_view() {
                // A dead PE stalls the sweep permanently; name it now
                // instead of burning the rest of the timeout.
                self.barrier_stall(trace_epoch, left, phase);
                let pe = self.first_dead(&view);
                // RESOLVES(none): barrier sweeps are doorbell-driven — the
                // net layer's fail_dest already swept any tracked entries
                // when the failure detector confirmed the death.
                return Err(ShmemError::PeFailed { pe, epoch: view.epoch });
            }
            if Instant::now() >= deadline {
                self.barrier_stall(trace_epoch, left, phase);
                return Err(ShmemError::BarrierTimeout { phase, waiting_on: left });
            }
        }
    }

    /// The "future work" algorithm: a ⌈log₂N⌉-round dissemination barrier
    /// (Mellor-Crummey & Scott, reference \[20\] in the paper's references). In round
    /// *k* every PE puts the current barrier epoch into the round-*k* flag
    /// of PE `(me + 2^k) mod N` and waits for its own round-*k* flag to
    /// reach the epoch. Signals are ordinary small puts, so they traverse
    /// the ring like any payload — no doorbell vectors are consumed and
    /// the hop count per round stays ≤ N/2.
    pub fn barrier_dissemination(&self, timeout: Duration) -> Result<()> {
        let t0 = Instant::now();
        let trace_epoch = self.barrier_trace_enter();
        let r = self.dissemination_inner(trace_epoch, t0, timeout);
        if r.is_err() {
            self.barrier_trace_retire();
        }
        r
    }

    fn dissemination_inner(&self, trace_epoch: u64, t0: Instant, timeout: Duration) -> Result<()> {
        self.quiet()?;
        let n = self.num_pes();
        if n == 1 {
            self.barrier_trace_exit(trace_epoch, t0);
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        if let Some(view) = self.degraded_view() {
            return self.barrier_degraded(trace_epoch, t0, deadline, view);
        }
        let epoch = self.barrier_epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        let mut round = 0usize;
        let mut dist = 1usize;
        while dist < n {
            let peer = (self.my_pe() + dist) % n;
            let waiting_on = (self.my_pe() + n - dist) % n;
            let phase = BarrierPhase::Round(round as u32);
            self.put(&self.barrier_flags, round, epoch, peer)?;
            // Wait for our own round flag. Epochs are monotonic, so `>=`
            // tolerates a fast peer that already signalled a later epoch
            // of this round (impossible here, but cheap insurance).
            loop {
                let seen = self.heap.version();
                let v = self.read_local(&self.barrier_flags, round)?;
                if CmpOp::Ge.eval(&v, &epoch) {
                    break;
                }
                if let Some(view) = self.degraded_view() {
                    self.barrier_stall(trace_epoch, waiting_on, phase);
                    let pe = self.first_dead(&view);
                    return Err(ShmemError::PeFailed { pe, epoch: view.epoch });
                }
                if Instant::now() >= deadline {
                    self.barrier_stall(trace_epoch, waiting_on, phase);
                    return Err(ShmemError::BarrierTimeout { phase, waiting_on });
                }
                // Clip the poll tick to the barrier deadline so a short
                // deadline is honored to the millisecond.
                self.heap.wait_change(
                    seen,
                    MEMBERSHIP_POLL
                        .min(Duration::from_millis(20))
                        .min(deadline.saturating_duration_since(Instant::now())),
                );
            }
            if self.node.obs().is_enabled() {
                self.node.obs().emit(
                    EventKind::BarrierRound,
                    trace_epoch,
                    [round as u64, dist as u64],
                );
            }
            dist <<= 1;
            round += 1;
        }
        self.barrier_trace_exit(trace_epoch, t0);
        Ok(())
    }

    /// Barrier over a degraded membership: refuse under
    /// [`DegradedPolicy::Fail`], otherwise run a dissemination barrier
    /// over the sorted live PEs using the dedicated degraded round flags.
    ///
    /// All surviving PEs run the same sequence of barrier calls (the SPMD
    /// contract), so the shared degraded-epoch counter names the same
    /// barrier on each of them even though the live set shrank.
    fn barrier_degraded(
        &self,
        trace_epoch: u64,
        t0: Instant,
        deadline: Instant,
        view: MembershipView,
    ) -> Result<()> {
        let n = self.num_pes();
        if self.cfg.degraded_policy == DegradedPolicy::Fail {
            let pe = self.first_dead(&view);
            // RESOLVES(none): policy check before the degraded round does
            // any communication — nothing is in flight for this barrier.
            return Err(ShmemError::PeFailed { pe, epoch: view.epoch });
        }
        let live = view.live_pes(n);
        let m = live.len();
        // lint: relaxed-ok(SeqCst matches barrier_epoch; collective call order names the epoch)
        let epoch = self.degraded_epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        if m <= 1 {
            self.barrier_trace_exit(trace_epoch, t0);
            return Ok(());
        }
        let rank = live
            .iter()
            .position(|&p| p == self.my_pe())
            .ok_or(ShmemError::Runtime("degraded barrier on an evicted PE"))?;
        let mut round = 0usize;
        let mut dist = 1usize;
        while dist < m {
            let peer = live[(rank + dist) % m];
            let waiting_on = live[(rank + m - dist) % m];
            let phase = BarrierPhase::Round(round as u32);
            // A peer dying between the view snapshot and this put fails
            // it with PeFailed (the transmit path checks liveness) —
            // exactly the surfacing we want.
            self.put(&self.degraded_flags, round, epoch, peer)?;
            loop {
                let seen = self.heap.version();
                let v = self.read_local(&self.degraded_flags, round)?;
                if CmpOp::Ge.eval(&v, &epoch) {
                    break;
                }
                let now = self.node.membership().view();
                if live.iter().any(|&p| !now.is_live(p)) {
                    // The live set this barrier was planned over is stale:
                    // a participant died mid-round. Fail; the callers
                    // retry and re-plan over the new membership.
                    self.barrier_stall(trace_epoch, waiting_on, phase);
                    let pe = live.iter().copied().find(|&p| !now.is_live(p)).unwrap_or(0);
                    // RESOLVES(none): the stale participant's in-flight ops
                    // were swept by fail_dest at detection; callers re-plan.
                    return Err(ShmemError::PeFailed { pe, epoch: now.epoch });
                }
                if Instant::now() >= deadline {
                    self.barrier_stall(trace_epoch, waiting_on, phase);
                    return Err(ShmemError::BarrierTimeout { phase, waiting_on });
                }
                self.heap.wait_change(
                    seen,
                    Duration::from_millis(20)
                        .min(deadline.saturating_duration_since(Instant::now())),
                );
            }
            if self.node.obs().is_enabled() {
                self.node.obs().emit(
                    EventKind::BarrierRound,
                    trace_epoch,
                    [round as u64, dist as u64],
                );
            }
            dist <<= 1;
            round += 1;
        }
        self.barrier_trace_exit(trace_epoch, t0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_are_stable() {
        assert_eq!(BarrierPhase::StartSweep.code(), 0);
        assert_eq!(BarrierPhase::EndSweep.code(), 1);
        assert_eq!(BarrierPhase::Round(0).code(), 2);
        assert_eq!(BarrierPhase::Round(3).code(), 5);
    }

    #[test]
    fn phase_displays() {
        assert_eq!(BarrierPhase::StartSweep.to_string(), "start sweep");
        assert_eq!(BarrierPhase::EndSweep.to_string(), "end sweep");
        assert_eq!(BarrierPhase::Round(2).to_string(), "dissemination round 2");
    }
}
