//! `shmem_barrier_all`: the two-round ring sweep of paper Fig. 6.
//!
//! The centralized-counter barrier needs shared memory every host can
//! reach, which the switchless ring does not have; the paper instead
//! circulates two doorbell sweeps:
//!
//! 1. **start sweep** — host 0 rings `BARRIER_START` on host 1; every
//!    other host waits for start from its left, then rings start on its
//!    right. The sweep returning to host 0 proves every host reached the
//!    barrier.
//! 2. **end sweep** — host 0 rings `BARRIER_END` rightward and releases;
//!    each host releases when end arrives from its left and passes it on.
//!    Host 0 finally consumes the end signal returning from host N-1,
//!    leaving the doorbell registers clean for the next barrier.
//!
//! Before signalling, each PE drains its outstanding puts (`quiet`) — the
//! paper's "first checked if previous DMA data transfer for Put or Get has
//! been completed" — which is what gives the barrier its memory-ordering
//! semantics.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use ntb_net::RouteDirection;
use ntb_sim::{EventKind, OpClass};

use crate::config::BarrierAlgorithm;
use crate::ctx::ShmemCtx;
use crate::error::{Result, ShmemError};
use crate::sync::CmpOp;

impl ShmemCtx {
    /// Synchronize all PEs and complete all outstanding memory updates
    /// (`shmem_barrier_all`).
    pub fn barrier_all(&self) -> Result<()> {
        self.barrier_all_with_timeout(self.cfg.barrier_timeout)
    }

    /// `barrier_all` with an explicit timeout.
    pub fn barrier_all_with_timeout(&self, timeout: Duration) -> Result<()> {
        match self.cfg.barrier_algorithm {
            BarrierAlgorithm::RingSweep => self.barrier_ring_sweep(timeout),
            BarrierAlgorithm::Dissemination => self.barrier_dissemination(timeout),
        }
    }

    /// Allocate the next trace epoch and emit `BarrierStart`. Barriers
    /// are collective and called in the same order on every PE, so the
    /// per-PE count names the same barrier everywhere — the checker's
    /// barrier invariant groups events by it.
    fn barrier_trace_enter(&self) -> u64 {
        // lint: relaxed-ok(monotonic trace-epoch allocation; collective call order names the
        // barrier, not this counter's memory ordering)
        let epoch = self.barrier_trace_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let obs = self.node.obs();
        if obs.is_enabled() {
            obs.emit(EventKind::BarrierStart, epoch, [self.num_pes() as u64, 0]);
        }
        epoch
    }

    fn barrier_trace_exit(&self, epoch: u64, t0: Instant) {
        let obs = self.node.obs();
        if obs.is_enabled() {
            self.node.metrics().record_op(OpClass::Barrier, t0.elapsed().as_micros() as u64);
            obs.emit(EventKind::BarrierEnd, epoch, [0, 0]);
        }
    }

    /// The paper's Fig. 6 algorithm: start sweep + end sweep of doorbells
    /// around the ring.
    pub fn barrier_ring_sweep(&self, timeout: Duration) -> Result<()> {
        let t0 = Instant::now();
        let epoch = self.barrier_trace_enter();
        // Complete this PE's outstanding communication first.
        self.quiet()?;
        if self.num_pes() == 1 {
            self.barrier_trace_exit(epoch, t0);
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let remaining = |deadline: Instant| -> Result<Duration> {
            let now = Instant::now();
            if now >= deadline {
                return Err(ShmemError::BarrierTimeout);
            }
            Ok(deadline - now)
        };

        if self.my_pe() == 0 {
            // Initiate the start sweep.
            self.node.send_barrier(RouteDirection::Right, true)?;
            // Wait for it to come around the ring.
            if !self.node.wait_barrier(RouteDirection::Left, true, remaining(deadline)?)? {
                return Err(ShmemError::BarrierTimeout);
            }
            if self.node.obs().is_enabled() {
                // Start sweep complete: every PE has entered the barrier.
                self.node.obs().emit(EventKind::BarrierRound, epoch, [0, 0]);
            }
            // Initiate the end sweep.
            self.node.send_barrier(RouteDirection::Right, false)?;
            // Consume the end signal returning from host N-1 so the
            // doorbell register is clean for the next barrier.
            if !self.node.wait_barrier(RouteDirection::Left, false, remaining(deadline)?)? {
                return Err(ShmemError::BarrierTimeout);
            }
        } else {
            // Wait for start from the left, pass it right.
            if !self.node.wait_barrier(RouteDirection::Left, true, remaining(deadline)?)? {
                return Err(ShmemError::BarrierTimeout);
            }
            self.node.send_barrier(RouteDirection::Right, true)?;
            // Wait for end from the left, pass it right, release.
            if !self.node.wait_barrier(RouteDirection::Left, false, remaining(deadline)?)? {
                return Err(ShmemError::BarrierTimeout);
            }
            if self.node.obs().is_enabled() {
                // The end sweep reaching this PE proves the start sweep
                // closed the ring: every PE has entered.
                self.node.obs().emit(EventKind::BarrierRound, epoch, [0, 0]);
            }
            self.node.send_barrier(RouteDirection::Right, false)?;
        }
        self.barrier_trace_exit(epoch, t0);
        Ok(())
    }

    /// The "future work" algorithm: a ⌈log₂N⌉-round dissemination barrier
    /// (Mellor-Crummey & Scott, reference \[20\] in the paper's references). In round
    /// *k* every PE puts the current barrier epoch into the round-*k* flag
    /// of PE `(me + 2^k) mod N` and waits for its own round-*k* flag to
    /// reach the epoch. Signals are ordinary small puts, so they traverse
    /// the ring like any payload — no doorbell vectors are consumed and
    /// the hop count per round stays ≤ N/2.
    pub fn barrier_dissemination(&self, timeout: Duration) -> Result<()> {
        let t0 = Instant::now();
        let trace_epoch = self.barrier_trace_enter();
        self.quiet()?;
        let n = self.num_pes();
        if n == 1 {
            self.barrier_trace_exit(trace_epoch, t0);
            return Ok(());
        }
        let epoch = self.barrier_epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        let deadline = Instant::now() + timeout;
        let mut round = 0usize;
        let mut dist = 1usize;
        while dist < n {
            let peer = (self.my_pe() + dist) % n;
            self.put(&self.barrier_flags, round, epoch, peer)?;
            // Wait for our own round flag. Epochs are monotonic, so `>=`
            // tolerates a fast peer that already signalled a later epoch
            // of this round (impossible here, but cheap insurance).
            loop {
                let seen = self.heap.version();
                let v = self.read_local(&self.barrier_flags, round)?;
                if CmpOp::Ge.eval(&v, &epoch) {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(ShmemError::BarrierTimeout);
                }
                self.heap.wait_change(seen, Duration::from_millis(20));
            }
            if self.node.obs().is_enabled() {
                self.node.obs().emit(
                    EventKind::BarrierRound,
                    trace_epoch,
                    [round as u64, dist as u64],
                );
            }
            dist <<= 1;
            round += 1;
        }
        self.barrier_trace_exit(trace_epoch, t0);
        Ok(())
    }
}
