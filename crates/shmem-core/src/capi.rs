//! Classic OpenSHMEM names: a porting veneer for C SHMEM code.
//!
//! The specification (and Table I of the paper) names its routines per C
//! type — `shmem_long_put`, `shmem_int_atomic_fetch_add`,
//! `shmem_double_sum_to_all`, ... The Rust API expresses the same surface
//! as generics on [`ShmemCtx`]; this module macro-generates the classic
//! names over it so a C SHMEM kernel can be transliterated line by line:
//!
//! ```
//! use shmem_core::{ShmemConfig, ShmemWorld};
//!
//! ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
//!     let shmem = ctx.c_api();
//!     let x = shmem.shmem_malloc(8 * 4).unwrap();
//!     let x = shmem_core::TypedSym::<i64>::new(x, 4).unwrap();
//!     if shmem.shmem_my_pe() == 0 {
//!         shmem.shmem_long_put(&x, &[1, 2, 3, 4], 1).unwrap();
//!     }
//!     shmem.shmem_barrier_all().unwrap();
//! })
//! .unwrap();
//! ```
//!
//! Differences from C kept deliberately: fallible routines return
//! `Result` instead of aborting, and destinations are typed symmetric
//! handles instead of raw pointers (the safety boundary of the Rust
//! model).

use crate::collectives::{ReduceOp, ShmemReduce};
use crate::ctx::{OpOptions, ShmemCtx};
use crate::error::Result;
use crate::symmetric::{SymAddr, TypedSym};
use crate::sync::CmpOp;
use crate::types::{ShmemAtomicInt, ShmemScalar};

/// The classic-name facade over one PE's context.
#[derive(Clone, Copy)]
pub struct CApi<'a> {
    ctx: &'a ShmemCtx,
}

impl ShmemCtx {
    /// The classic OpenSHMEM naming facade.
    pub fn c_api(&self) -> CApi<'_> {
        CApi { ctx: self }
    }
}

impl<'a> CApi<'a> {
    /// `shmem_my_pe()`.
    pub fn shmem_my_pe(&self) -> i32 {
        self.ctx.my_pe() as i32
    }

    /// `shmem_n_pes()` / `num_pes()`.
    pub fn shmem_n_pes(&self) -> i32 {
        self.ctx.num_pes() as i32
    }

    /// `shmem_malloc(size)`.
    pub fn shmem_malloc(&self, size: usize) -> Result<SymAddr> {
        self.ctx.malloc(size as u64)
    }

    /// `shmem_calloc(count, size)`.
    pub fn shmem_calloc(&self, count: usize, size: usize) -> Result<SymAddr> {
        self.ctx.calloc((count * size) as u64)
    }

    /// `shmem_align(alignment, size)`.
    pub fn shmem_align(&self, alignment: usize, size: usize) -> Result<SymAddr> {
        self.ctx.malloc_aligned(size as u64, alignment as u64)
    }

    /// `shmem_free(ptr)`.
    pub fn shmem_free(&self, addr: SymAddr) -> Result<()> {
        self.ctx.free(addr)
    }

    /// `shmem_barrier_all()`.
    pub fn shmem_barrier_all(&self) -> Result<()> {
        self.ctx.barrier_all()
    }

    /// `shmem_quiet()`.
    pub fn shmem_quiet(&self) -> Result<()> {
        self.ctx.quiet()
    }

    /// `shmem_fence()`.
    pub fn shmem_fence(&self) -> Result<()> {
        self.ctx.fence()
    }

    /// `shmem_ctx_quiet(ctx)` (OpenSHMEM 1.4): this model has one
    /// communication context per PE, so it is `shmem_quiet` on it.
    pub fn shmem_ctx_quiet(&self) -> Result<()> {
        self.ctx.quiet()
    }

    /// `shmem_ctx_fence(ctx)` (OpenSHMEM 1.4).
    pub fn shmem_ctx_fence(&self) -> Result<()> {
        self.ctx.fence()
    }

    /// `shmem_sync_all()` (OpenSHMEM 1.4): barrier without the implicit
    /// quiet — this transport's barrier already subsumes it.
    pub fn shmem_sync_all(&self) -> Result<()> {
        self.ctx.barrier_all()
    }

    /// `shmem_set_lock(lock)`.
    pub fn shmem_set_lock(&self, lock: &TypedSym<u64>) -> Result<()> {
        self.ctx.set_lock(lock)
    }

    /// `shmem_clear_lock(lock)`.
    pub fn shmem_clear_lock(&self, lock: &TypedSym<u64>) -> Result<()> {
        self.ctx.clear_lock(lock)
    }

    /// `shmem_test_lock(lock)` — `true` means acquired.
    pub fn shmem_test_lock(&self, lock: &TypedSym<u64>) -> Result<bool> {
        self.ctx.test_lock(lock)
    }

    /// Generic `shmem_putmem`: raw bytes.
    pub fn shmem_putmem(&self, dest: &TypedSym<u8>, src: &[u8], pe: i32) -> Result<()> {
        self.ctx.put_slice(dest, 0, src, pe as usize)
    }

    /// Generic `shmem_getmem`: raw bytes.
    pub fn shmem_getmem(&self, src: &TypedSym<u8>, nelems: usize, pe: i32) -> Result<Vec<u8>> {
        self.ctx.get_slice(src, 0, nelems, pe as usize)
    }

    /// `shmem_putmem_nbi(dest, source, nelems, pe)` (OpenSHMEM 1.4):
    /// staging only, doorbell coalesced; `shmem_quiet` completes it.
    pub fn shmem_putmem_nbi(&self, dest: &TypedSym<u8>, src: &[u8], pe: i32) -> Result<()> {
        self.ctx.put_slice_opts(dest, 0, src, pe as usize, OpOptions::nbi())
    }

    /// `shmem_getmem_nbi(dest, source, nelems, pe)` (OpenSHMEM 1.4);
    /// this model completes gets eagerly.
    pub fn shmem_getmem_nbi(&self, src: &TypedSym<u8>, nelems: usize, pe: i32) -> Result<Vec<u8>> {
        self.ctx.get_slice_opts(src, 0, nelems, pe as usize, OpOptions::nbi())
    }

    /// Generic `shmem_getmem` with explicit [`OpOptions`] — the escape
    /// hatch for deadline-bounded or window-tuned bulk gets from
    /// transliterated C code.
    pub fn shmem_getmem_opts(
        &self,
        src: &TypedSym<u8>,
        nelems: usize,
        pe: i32,
        opts: OpOptions,
    ) -> Result<Vec<u8>> {
        self.ctx.get_slice_opts(src, 0, nelems, pe as usize, opts)
    }
}

/// RMA routines for one C type name.
macro_rules! c_rma {
    ($t:ty, $put:ident, $get:ident, $p:ident, $g:ident, $iput:ident, $iget:ident,
     $put_nbi:ident, $get_nbi:ident) => {
        impl<'a> CApi<'a> {
            /// `shmem_TYPE_put(dest, source, nelems, pe)`.
            pub fn $put(&self, dest: &TypedSym<$t>, src: &[$t], pe: i32) -> Result<()> {
                self.ctx.put_slice(dest, 0, src, pe as usize)
            }

            /// `shmem_TYPE_get(dest, source, nelems, pe)`.
            pub fn $get(&self, src: &TypedSym<$t>, nelems: usize, pe: i32) -> Result<Vec<$t>> {
                self.ctx.get_slice(src, 0, nelems, pe as usize)
            }

            /// `shmem_TYPE_put_nbi(dest, source, nelems, pe)` (OpenSHMEM
            /// 1.4): doorbell coalesced, completion at `shmem_quiet`.
            pub fn $put_nbi(&self, dest: &TypedSym<$t>, src: &[$t], pe: i32) -> Result<()> {
                self.ctx.put_slice_opts(dest, 0, src, pe as usize, OpOptions::nbi())
            }

            /// `shmem_TYPE_get_nbi(dest, source, nelems, pe)` (OpenSHMEM
            /// 1.4); completes eagerly in this model.
            pub fn $get_nbi(&self, src: &TypedSym<$t>, nelems: usize, pe: i32) -> Result<Vec<$t>> {
                self.ctx.get_slice_opts(src, 0, nelems, pe as usize, OpOptions::nbi())
            }

            /// `shmem_TYPE_p(addr, value, pe)`.
            pub fn $p(&self, dest: &TypedSym<$t>, value: $t, pe: i32) -> Result<()> {
                self.ctx.put(dest, 0, value, pe as usize)
            }

            /// `shmem_TYPE_g(addr, pe)`.
            pub fn $g(&self, src: &TypedSym<$t>, pe: i32) -> Result<$t> {
                self.ctx.get(src, 0, pe as usize)
            }

            /// `shmem_TYPE_iput(dest, source, tst, sst, nelems, pe)`.
            #[allow(clippy::too_many_arguments)]
            pub fn $iput(
                &self,
                dest: &TypedSym<$t>,
                src: &[$t],
                tst: usize,
                sst: usize,
                nelems: usize,
                pe: i32,
            ) -> Result<()> {
                self.ctx.iput(dest, 0, tst, src, sst, nelems, pe as usize)
            }

            /// `shmem_TYPE_iget(dest, source, sst, nelems, pe)`.
            pub fn $iget(
                &self,
                src: &TypedSym<$t>,
                sst: usize,
                nelems: usize,
                pe: i32,
            ) -> Result<Vec<$t>> {
                self.ctx.iget(src, 0, sst, nelems, pe as usize)
            }
        }
    };
}

c_rma!(
    i32,
    shmem_int_put,
    shmem_int_get,
    shmem_int_p,
    shmem_int_g,
    shmem_int_iput,
    shmem_int_iget,
    shmem_int_put_nbi,
    shmem_int_get_nbi
);
c_rma!(
    i64,
    shmem_long_put,
    shmem_long_get,
    shmem_long_p,
    shmem_long_g,
    shmem_long_iput,
    shmem_long_iget,
    shmem_long_put_nbi,
    shmem_long_get_nbi
);
c_rma!(
    i16,
    shmem_short_put,
    shmem_short_get,
    shmem_short_p,
    shmem_short_g,
    shmem_short_iput,
    shmem_short_iget,
    shmem_short_put_nbi,
    shmem_short_get_nbi
);
c_rma!(
    f32,
    shmem_float_put,
    shmem_float_get,
    shmem_float_p,
    shmem_float_g,
    shmem_float_iput,
    shmem_float_iget,
    shmem_float_put_nbi,
    shmem_float_get_nbi
);
c_rma!(
    f64,
    shmem_double_put,
    shmem_double_get,
    shmem_double_p,
    shmem_double_g,
    shmem_double_iput,
    shmem_double_iget,
    shmem_double_put_nbi,
    shmem_double_get_nbi
);
c_rma!(
    u32,
    shmem_uint_put,
    shmem_uint_get,
    shmem_uint_p,
    shmem_uint_g,
    shmem_uint_iput,
    shmem_uint_iget,
    shmem_uint_put_nbi,
    shmem_uint_get_nbi
);
c_rma!(
    u64,
    shmem_ulong_put,
    shmem_ulong_get,
    shmem_ulong_p,
    shmem_ulong_g,
    shmem_ulong_iput,
    shmem_ulong_iget,
    shmem_ulong_put_nbi,
    shmem_ulong_get_nbi
);

/// Atomic routines for one C integer type name.
macro_rules! c_atomic {
    ($t:ty, $fadd:ident, $add:ident, $inc:ident, $finc:ident, $swap:ident, $cswap:ident, $fetch:ident, $set:ident) => {
        impl<'a> CApi<'a> {
            /// `shmem_TYPE_atomic_fetch_add(target, value, pe)`.
            pub fn $fadd(&self, target: &TypedSym<$t>, value: $t, pe: i32) -> Result<$t> {
                self.ctx.atomic_fetch_add(target, 0, value, pe as usize)
            }

            /// `shmem_TYPE_atomic_add(target, value, pe)`.
            pub fn $add(&self, target: &TypedSym<$t>, value: $t, pe: i32) -> Result<()> {
                self.ctx.atomic_add(target, 0, value, pe as usize)
            }

            /// `shmem_TYPE_atomic_inc(target, pe)`.
            pub fn $inc(&self, target: &TypedSym<$t>, pe: i32) -> Result<()> {
                self.ctx.atomic_inc(target, 0, pe as usize)
            }

            /// `shmem_TYPE_atomic_fetch_inc(target, pe)`.
            pub fn $finc(&self, target: &TypedSym<$t>, pe: i32) -> Result<$t> {
                self.ctx.atomic_fetch_inc(target, 0, pe as usize)
            }

            /// `shmem_TYPE_atomic_swap(target, value, pe)`.
            pub fn $swap(&self, target: &TypedSym<$t>, value: $t, pe: i32) -> Result<$t> {
                self.ctx.atomic_swap(target, 0, value, pe as usize)
            }

            /// `shmem_TYPE_atomic_compare_swap(target, cond, value, pe)`.
            pub fn $cswap(
                &self,
                target: &TypedSym<$t>,
                cond: $t,
                value: $t,
                pe: i32,
            ) -> Result<$t> {
                self.ctx.atomic_compare_swap(target, 0, cond, value, pe as usize)
            }

            /// `shmem_TYPE_atomic_fetch(target, pe)`.
            pub fn $fetch(&self, target: &TypedSym<$t>, pe: i32) -> Result<$t> {
                self.ctx.atomic_fetch(target, 0, pe as usize)
            }

            /// `shmem_TYPE_atomic_set(target, value, pe)`.
            pub fn $set(&self, target: &TypedSym<$t>, value: $t, pe: i32) -> Result<()> {
                self.ctx.atomic_set(target, 0, value, pe as usize)
            }
        }
    };
}

c_atomic!(
    i32,
    shmem_int_atomic_fetch_add,
    shmem_int_atomic_add,
    shmem_int_atomic_inc,
    shmem_int_atomic_fetch_inc,
    shmem_int_atomic_swap,
    shmem_int_atomic_compare_swap,
    shmem_int_atomic_fetch,
    shmem_int_atomic_set
);
c_atomic!(
    i64,
    shmem_long_atomic_fetch_add,
    shmem_long_atomic_add,
    shmem_long_atomic_inc,
    shmem_long_atomic_fetch_inc,
    shmem_long_atomic_swap,
    shmem_long_atomic_compare_swap,
    shmem_long_atomic_fetch,
    shmem_long_atomic_set
);
c_atomic!(
    u64,
    shmem_ulong_atomic_fetch_add,
    shmem_ulong_atomic_add,
    shmem_ulong_atomic_inc,
    shmem_ulong_atomic_fetch_inc,
    shmem_ulong_atomic_swap,
    shmem_ulong_atomic_compare_swap,
    shmem_ulong_atomic_fetch,
    shmem_ulong_atomic_set
);

/// Reduction routines for one C type name.
macro_rules! c_reduce {
    ($t:ty, $sum:ident, $prod:ident, $min:ident, $max:ident) => {
        impl<'a> CApi<'a> {
            /// `shmem_TYPE_sum_to_all(...)` — all PEs receive the sum.
            pub fn $sum(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce(ReduceOp::Sum, src)
            }

            /// `shmem_TYPE_prod_to_all(...)`.
            pub fn $prod(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce(ReduceOp::Prod, src)
            }

            /// `shmem_TYPE_min_to_all(...)`.
            pub fn $min(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce(ReduceOp::Min, src)
            }

            /// `shmem_TYPE_max_to_all(...)`.
            pub fn $max(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce(ReduceOp::Max, src)
            }
        }
    };
}

c_reduce!(
    i32,
    shmem_int_sum_to_all,
    shmem_int_prod_to_all,
    shmem_int_min_to_all,
    shmem_int_max_to_all
);
c_reduce!(
    i64,
    shmem_long_sum_to_all,
    shmem_long_prod_to_all,
    shmem_long_min_to_all,
    shmem_long_max_to_all
);
c_reduce!(
    f32,
    shmem_float_sum_to_all,
    shmem_float_prod_to_all,
    shmem_float_min_to_all,
    shmem_float_max_to_all
);
c_reduce!(
    f64,
    shmem_double_sum_to_all,
    shmem_double_prod_to_all,
    shmem_double_min_to_all,
    shmem_double_max_to_all
);

/// The OpenSHMEM 1.5 `shmem_TYPE_OP_reduce` typed wrappers (the modern
/// names for the classic `_to_all` calls), served by the log-depth
/// binomial tree rather than the linear gather.
macro_rules! c_reduce15 {
    ($t:ty, $sum:ident, $prod:ident, $min:ident, $max:ident) => {
        impl<'a> CApi<'a> {
            /// `shmem_TYPE_sum_reduce(team, dest, source, nreduce)`.
            pub fn $sum(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce_tree(ReduceOp::Sum, src)
            }

            /// `shmem_TYPE_prod_reduce(...)`.
            pub fn $prod(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce_tree(ReduceOp::Prod, src)
            }

            /// `shmem_TYPE_min_reduce(...)`.
            pub fn $min(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce_tree(ReduceOp::Min, src)
            }

            /// `shmem_TYPE_max_reduce(...)`.
            pub fn $max(&self, src: &[$t]) -> Result<Vec<$t>> {
                self.ctx.allreduce_tree(ReduceOp::Max, src)
            }
        }
    };
}

c_reduce15!(
    i32,
    shmem_int_sum_reduce,
    shmem_int_prod_reduce,
    shmem_int_min_reduce,
    shmem_int_max_reduce
);
c_reduce15!(
    i64,
    shmem_long_sum_reduce,
    shmem_long_prod_reduce,
    shmem_long_min_reduce,
    shmem_long_max_reduce
);
c_reduce15!(
    u64,
    shmem_uint64_sum_reduce,
    shmem_uint64_prod_reduce,
    shmem_uint64_min_reduce,
    shmem_uint64_max_reduce
);
c_reduce15!(
    f64,
    shmem_double_sum_reduce,
    shmem_double_prod_reduce,
    shmem_double_min_reduce,
    shmem_double_max_reduce
);

impl<'a> CApi<'a> {
    /// `shmem_TYPE_wait_until(ivar, cmp, value)` (generic over the type).
    pub fn shmem_wait_until<T: ShmemScalar + PartialOrd>(
        &self,
        ivar: &TypedSym<T>,
        cmp: CmpOp,
        value: T,
    ) -> Result<T> {
        // DEADLINE-CLIPPED: delegate — `ctx.wait_until` derives its own
        // deadline from `cfg.wait_timeout` and clips every poll tick to it.
        self.ctx.wait_until(ivar, 0, cmp, value)
    }

    /// `shmem_broadcast(dest == source here, nelems, root)` (generic).
    pub fn shmem_broadcast<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        nelems: usize,
        root: i32,
    ) -> Result<()> {
        self.ctx.broadcast(sym, 0, nelems, root as usize)
    }

    /// `shmem_fcollect` (generic).
    pub fn shmem_fcollect<T: ShmemScalar>(&self, dest: &TypedSym<T>, src: &[T]) -> Result<()> {
        self.ctx.fcollect(dest, src)
    }

    /// `shmem_collect` (generic, variable contributions).
    pub fn shmem_collect<T: ShmemScalar>(&self, dest: &TypedSym<T>, src: &[T]) -> Result<usize> {
        self.ctx.collect(dest, src)
    }

    /// `shmem_alltoall` (generic).
    pub fn shmem_alltoall<T: ShmemScalar>(
        &self,
        dest: &TypedSym<T>,
        src: &[T],
        block: usize,
    ) -> Result<()> {
        self.ctx.alltoall(dest, src, block)
    }

    /// Generic reduction escape hatch (any `ShmemReduce` type and op).
    pub fn shmem_reduce<T: ShmemReduce>(&self, op: ReduceOp, src: &[T]) -> Result<Vec<T>> {
        self.ctx.allreduce(op, src)
    }

    /// `shmem_broadcastmem(dest == source here, nelems, root)`: the
    /// OpenSHMEM 1.5 byte-granular broadcast, served by the log-depth
    /// binomial tree.
    pub fn shmem_broadcastmem(&self, sym: &TypedSym<u8>, nelems: usize, root: i32) -> Result<()> {
        self.ctx.broadcast_tree(sym, 0, nelems, root as usize)
    }

    /// `shmem_team_sync(team)`: OpenSHMEM 1.5 team synchronization.
    pub fn shmem_team_sync(&self, team: &crate::teams::Team) -> Result<()> {
        self.ctx.team_sync(team)
    }

    /// Generic atomic escape hatch.
    pub fn shmem_atomic_fetch_add<T: ShmemAtomicInt>(
        &self,
        target: &TypedSym<T>,
        value: T,
        pe: i32,
    ) -> Result<T> {
        self.ctx.atomic_fetch_add(target, 0, value, pe as usize)
    }
}
