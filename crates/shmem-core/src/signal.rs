//! Put-with-signal (`shmem_put_signal`, OpenSHMEM 1.5).
//!
//! A put followed by a signal-word update that the target can wait on,
//! with the guarantee that *when the signal is visible, the data is too* —
//! without the origin paying a full `quiet` round trip between them.
//!
//! On this transport the guarantee comes from FIFO delivery along a fixed
//! route: the data chunks and the trailing signal put travel the same
//! sequence of link mailboxes (the route to a given destination is
//! deterministic — shortest ring direction, or the dedicated mesh link),
//! each link preserves order, and the destination's service thread
//! delivers frames of one inbound link in order. The signal frame is
//! enqueued after the last data chunk, so it lands last.

use crate::ctx::{OpOptions, ShmemCtx};
use crate::error::Result;
use crate::symmetric::TypedSym;
use crate::sync::CmpOp;
use crate::types::{ShmemAtomicInt, ShmemScalar};
use ntb_sim::TransferMode;

/// How the signal word is updated (`SHMEM_SIGNAL_SET` / `_ADD`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalOp {
    /// Overwrite the signal word.
    Set,
    /// Add to the signal word (useful when several producers target the
    /// same consumer).
    Add,
}

impl ShmemCtx {
    /// `shmem_put_signal`: put `data` into `sym[index..]` at PE `pe`, then
    /// update the signal word `sig[sig_index]` there with
    /// `op`/`sig_value`. When the target observes the signal, the data is
    /// guaranteed visible. Locally blocking like `put`.
    #[allow(clippy::too_many_arguments)]
    pub fn put_with_signal<T: ShmemScalar, S: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
        sig: &TypedSym<S>,
        sig_index: usize,
        sig_value: S,
        op: SignalOp,
        pe: usize,
    ) -> Result<()> {
        self.put_with_signal_mode(
            sym,
            index,
            data,
            sig,
            sig_index,
            sig_value,
            op,
            pe,
            self.default_mode(),
        )
    }

    /// [`put_with_signal`](Self::put_with_signal) with an explicit
    /// transfer mode.
    #[allow(clippy::too_many_arguments)]
    pub fn put_with_signal_mode<T: ShmemScalar, S: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
        sig: &TypedSym<S>,
        sig_index: usize,
        sig_value: S,
        op: SignalOp,
        pe: usize,
        mode: TransferMode,
    ) -> Result<()> {
        self.check_pe(pe)?;
        let opts = OpOptions::new().mode(mode);
        self.put_slice_opts(sym, index, data, pe, opts)?;
        match op {
            SignalOp::Set => {
                // An ordinary put of the signal word: same route as the
                // data, FIFO behind it.
                self.put_slice_opts(sig, sig_index, &[sig_value], pe, opts)
            }
            SignalOp::Add => {
                // Additive signals must be atomic across producers. The
                // AMO request frame follows the same route, so ordering
                // behind the data still holds.
                self.atomic_add(sig, sig_index, sig_value, pe)
            }
        }
    }

    /// `shmem_signal_wait_until`: block until this PE's signal word
    /// satisfies `cmp target` and return its value.
    pub fn signal_wait_until<S: ShmemAtomicInt + PartialOrd>(
        &self,
        sig: &TypedSym<S>,
        sig_index: usize,
        cmp: CmpOp,
        target: S,
    ) -> Result<S> {
        // DEADLINE-CLIPPED: delegate — `wait_until` derives its deadline
        // from `cfg.wait_timeout` and clips each poll tick to it.
        self.wait_until(sig, sig_index, cmp, target)
    }

    /// `shmem_signal_fetch`: read this PE's signal word.
    pub fn signal_fetch<S: ShmemAtomicInt>(
        &self,
        sig: &TypedSym<S>,
        sig_index: usize,
    ) -> Result<S> {
        self.read_local(sig, sig_index)
    }
}
