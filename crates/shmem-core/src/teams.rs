//! Active sets and teams: collectives over subsets of the world.
//!
//! Classic SHMEM scopes collectives with the *(PE_start, logPE_stride,
//! PE_size)* active-set triple; OpenSHMEM 1.4 wraps the same idea into
//! teams. A [`Team`] here is an active set plus its symmetric
//! synchronization state (the `pSync` work array of the classic API),
//! created collectively over the **whole world** — exactly like classic
//! SHMEM requires `pSync` to be symmetric even on PEs outside the set.
//!
//! Subset barriers cannot ride the physical barrier doorbells (those
//! implement the paper's whole-world ring sweep), so team barriers use the
//! dissemination algorithm over put-flags, which works for any member
//! subset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::barrier::BarrierPhase;
use crate::collectives::{ReduceOp, ShmemReduce};
use crate::ctx::ShmemCtx;
use crate::error::{Result, ShmemError};
use crate::symmetric::TypedSym;
use crate::sync::CmpOp;
use crate::types::ShmemScalar;

/// The classic SHMEM active-set triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSet {
    /// First PE of the set.
    pub pe_start: usize,
    /// log₂ of the stride between members.
    pub log_stride: u32,
    /// Number of members.
    pub size: usize,
}

impl ActiveSet {
    /// The set `{pe_start + i * 2^log_stride | i in 0..size}`.
    pub fn new(pe_start: usize, log_stride: u32, size: usize) -> ActiveSet {
        ActiveSet { pe_start, log_stride, size }
    }

    /// Every PE of an `n`-PE world.
    pub fn world(n: usize) -> ActiveSet {
        ActiveSet { pe_start: 0, log_stride: 0, size: n }
    }

    /// Stride in PEs.
    pub fn stride(&self) -> usize {
        1usize << self.log_stride
    }

    /// World rank of member `i`.
    pub fn member(&self, i: usize) -> usize {
        self.pe_start + i * self.stride()
    }

    /// Membership index of world rank `pe`, if a member.
    pub fn rank_of(&self, pe: usize) -> Option<usize> {
        if pe < self.pe_start {
            return None;
        }
        let delta = pe - self.pe_start;
        if !delta.is_multiple_of(self.stride()) {
            return None;
        }
        let i = delta / self.stride();
        (i < self.size).then_some(i)
    }

    /// Largest world rank any member occupies.
    pub fn max_pe(&self) -> usize {
        self.member(self.size.saturating_sub(1))
    }
}

/// A team: an active set plus symmetric synchronization state.
pub struct Team {
    set: ActiveSet,
    /// This PE's rank within the team (`None` for non-members).
    my_rank: Option<usize>,
    /// Dissemination-barrier round flags (symmetric on every world PE).
    flags: TypedSym<u64>,
    /// Monotonic barrier epoch, local.
    epoch: AtomicU64,
}

/// Rounds reserved per team barrier (supports up to 2^8 members; the
/// world is capped at 64 PEs by the frame format).
const TEAM_ROUNDS: usize = 8;

impl Team {
    /// The active set this team spans.
    pub fn active_set(&self) -> ActiveSet {
        self.set
    }

    /// This PE's rank in the team, if a member.
    pub fn my_rank(&self) -> Option<usize> {
        self.my_rank
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.set.size
    }

    /// True if the calling PE belongs to the team.
    pub fn is_member(&self) -> bool {
        self.my_rank.is_some()
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team").field("set", &self.set).field("my_rank", &self.my_rank).finish()
    }
}

impl ShmemCtx {
    /// Create a team over `set`. **Collective over the whole world**
    /// (every PE must call with the same set, members or not), like the
    /// classic requirement that `pSync` be symmetric.
    pub fn team_split(&self, set: ActiveSet) -> Result<Team> {
        if set.size == 0 || set.max_pe() >= self.num_pes() {
            return Err(ShmemError::Runtime("active set exceeds the world"));
        }
        let flags = self.calloc_array::<u64>(TEAM_ROUNDS)?; // collective (barriers)
        Ok(Team { set, my_rank: set.rank_of(self.my_pe()), flags, epoch: AtomicU64::new(0) })
    }

    /// A team over the whole world.
    pub fn team_world(&self) -> Result<Team> {
        self.team_split(ActiveSet::world(self.num_pes()))
    }

    /// Release a team's symmetric state. Collective over the world.
    pub fn team_destroy(&self, team: Team) -> Result<()> {
        self.free_array(team.flags)
    }

    /// Dissemination barrier over the team's members. Non-members return
    /// immediately (they do not synchronize).
    pub fn team_barrier(&self, team: &Team) -> Result<()> {
        let Some(rank) = team.my_rank else {
            return Ok(());
        };
        self.quiet()?;
        let n = team.size();
        if n == 1 {
            return Ok(());
        }
        let epoch = team.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let deadline = Instant::now() + self.cfg.barrier_timeout;
        let mut round = 0usize;
        let mut dist = 1usize;
        while dist < n {
            let peer = team.set.member((rank + dist) % n);
            self.put(&team.flags, round, epoch, peer)?;
            loop {
                let seen = self.heap.version();
                let v = self.read_local(&team.flags, round)?;
                if CmpOp::Ge.eval(&v, &epoch) {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(ShmemError::BarrierTimeout {
                        phase: BarrierPhase::Round(round as u32),
                        waiting_on: team.set.member((rank + n - dist) % n),
                    });
                }
                self.heap.wait_change(
                    seen,
                    Duration::from_millis(20)
                        .min(deadline.saturating_duration_since(Instant::now())),
                );
            }
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// `shmem_team_sync`: the OpenSHMEM 1.5 name for the team barrier
    /// (no implicit quiet semantics beyond what [`Self::team_barrier`]
    /// already provides).
    pub fn team_sync(&self, team: &Team) -> Result<()> {
        self.team_barrier(team)
    }

    /// Binomial-tree broadcast over the team: log₂(size) rounds, every
    /// holder with tree rank `r` forwards to rank `r + 2^k`, ranks
    /// rotated so `root_rank` is rank 0. Collective over the **world**
    /// (allocates a symmetric signal word); non-members only participate
    /// in the allocation barriers.
    pub fn team_broadcast_tree<T: ShmemScalar>(
        &self,
        team: &Team,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        root_rank: usize,
    ) -> Result<()> {
        use crate::signal::SignalOp;
        if root_rank >= team.size() {
            return Err(ShmemError::Runtime("broadcast root outside the team"));
        }
        let sig: TypedSym<u64> = self.calloc_array(1)?; // collective + entry sync
        let result = (|| {
            let Some(rank_abs) = team.my_rank else {
                return Ok(());
            };
            let m = team.size();
            let rank = (rank_abs + m - root_rank) % m;
            if rank != 0 {
                self.signal_wait_until(&sig, 0, CmpOp::Eq, 1u64)?;
            }
            let data = self.read_local_slice(sym, index, count)?;
            let mut step = 1usize;
            while step < m {
                if step > rank && rank + step < m {
                    let dest = team.set.member((root_rank + rank + step) % m);
                    self.put_with_signal(sym, index, &data, &sig, 0, 1u64, SignalOp::Set, dest)?;
                }
                step <<= 1;
            }
            Ok(())
        })();
        // Exit sync doubles as the signal-word teardown barrier.
        self.free_array(sig)?;
        result
    }

    /// Log-depth all-reduce over the team: a binomial reduce to rank 0
    /// followed by a tree broadcast of the result — 2·log₂(size) rounds
    /// versus the linear gather of [`Self::team_allreduce`]. Members get
    /// the result, non-members `None`. Collective over the **world**
    /// (allocates symmetric scratch).
    pub fn team_allreduce_tree<T: ShmemReduce>(
        &self,
        team: &Team,
        op: ReduceOp,
        src: &[T],
    ) -> Result<Option<Vec<T>>> {
        use crate::signal::SignalOp;
        let len = src.len();
        let rounds = team.size().next_power_of_two().trailing_zeros() as usize;
        let scratch: TypedSym<T> = self.calloc_array(len * rounds.max(1) + len)?;
        // One signal word per reduce round plus one for the broadcast
        // phase — everything is allocated up front so members and
        // non-members execute the same (collective) alloc/free sequence.
        let sig: TypedSym<u64> = self.calloc_array(rounds.max(1) + 1)?;
        let result = (|| {
            let Some(rank) = team.my_rank else {
                return Ok(None);
            };
            let m = team.size();
            let mut acc = src.to_vec();
            for k in 0..rounds {
                let step = 1usize << k;
                if rank & step != 0 {
                    // Fold into the round-k parent and retire.
                    let parent = team.set.member(rank - step);
                    self.put_with_signal(
                        &scratch,
                        k * len,
                        &acc,
                        &sig,
                        k,
                        1u64,
                        SignalOp::Set,
                        parent,
                    )?;
                    break;
                }
                if rank + step < m {
                    self.signal_wait_until(&sig, k, CmpOp::Eq, 1u64)?;
                    let part = self.read_local_slice(&scratch, k * len, len)?;
                    for (a, b) in acc.iter_mut().zip(part) {
                        *a = T::combine(op, *a, b);
                    }
                }
            }
            // Rank 0 holds the full result in the trailing scratch slot;
            // tree-broadcast it back down the same binomial shape using
            // the pre-allocated broadcast signal word.
            let slot = rounds.max(1) * len;
            let bsig = rounds.max(1);
            if rank == 0 {
                self.write_local_slice(&scratch, slot, &acc)?;
            } else {
                self.signal_wait_until(&sig, bsig, CmpOp::Eq, 1u64)?;
            }
            let data = self.read_local_slice(&scratch, slot, len)?;
            let mut step = 1usize;
            while step < m {
                if step > rank && rank + step < m {
                    let dest = team.set.member(rank + step);
                    self.put_with_signal(
                        &scratch,
                        slot,
                        &data,
                        &sig,
                        bsig,
                        1u64,
                        SignalOp::Set,
                        dest,
                    )?;
                }
                step <<= 1;
            }
            Ok(Some(data))
        })();
        self.free_array(sig)?;
        self.free_array(scratch)?;
        result
    }

    /// Broadcast `count` elements of `sym` starting at `index` from the
    /// team member with rank `root_rank` to all members. Collective over
    /// the team (non-members return immediately).
    pub fn team_broadcast<T: ShmemScalar>(
        &self,
        team: &Team,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        root_rank: usize,
    ) -> Result<()> {
        if root_rank >= team.size() {
            return Err(ShmemError::Runtime("broadcast root outside the team"));
        }
        let Some(rank) = team.my_rank else {
            return Ok(());
        };
        self.team_barrier(team)?;
        if rank == root_rank {
            let data = self.read_local_slice(sym, index, count)?;
            for i in 0..team.size() {
                if i != root_rank {
                    self.put_slice(sym, index, &data, team.set.member(i))?;
                }
            }
        }
        self.team_barrier(team)
    }

    /// All-reduce `src` element-wise over the team; every member gets the
    /// result, non-members get `None`. Collective over the **world** (it
    /// allocates symmetric scratch).
    pub fn team_allreduce<T: ShmemReduce>(
        &self,
        team: &Team,
        op: ReduceOp,
        src: &[T],
    ) -> Result<Option<Vec<T>>> {
        let scratch: TypedSym<T> = self.calloc_array(team.size() * src.len())?;
        let result = (|| {
            let Some(rank) = team.my_rank else {
                return Ok(None);
            };
            // Gather every member's contribution into every member's
            // scratch, then combine locally.
            self.team_barrier(team)?;
            let slot = rank * src.len();
            self.write_local_slice(&scratch, slot, src)?;
            for i in 0..team.size() {
                if i != rank {
                    self.put_slice(&scratch, slot, src, team.set.member(i))?;
                }
            }
            self.team_barrier(team)?;
            let all = self.read_local_slice(&scratch, 0, team.size() * src.len())?;
            let mut out = vec![T::identity(op); src.len()];
            for member in 0..team.size() {
                for (i, item) in out.iter_mut().enumerate() {
                    *item = T::combine(op, *item, all[member * src.len() + i]);
                }
            }
            Ok(Some(out))
        })();
        self.free_array(scratch)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_set_membership() {
        // PEs {1, 3, 5} of a 6-PE world.
        let s = ActiveSet::new(1, 1, 3);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.member(0), 1);
        assert_eq!(s.member(2), 5);
        assert_eq!(s.max_pe(), 5);
        assert_eq!(s.rank_of(1), Some(0));
        assert_eq!(s.rank_of(3), Some(1));
        assert_eq!(s.rank_of(5), Some(2));
        assert_eq!(s.rank_of(0), None);
        assert_eq!(s.rank_of(2), None);
        assert_eq!(s.rank_of(7), None);
    }

    #[test]
    fn world_set() {
        let s = ActiveSet::world(4);
        assert_eq!(s.size, 4);
        for pe in 0..4 {
            assert_eq!(s.rank_of(pe), Some(pe));
        }
    }

    #[test]
    fn contiguous_prefix_set() {
        let s = ActiveSet::new(0, 0, 2);
        assert_eq!(s.rank_of(0), Some(0));
        assert_eq!(s.rank_of(1), Some(1));
        assert_eq!(s.rank_of(2), None);
    }
}
