//! Error types of the OpenSHMEM layer.

use std::fmt;

use ntb_sim::NtbError;

use crate::barrier::BarrierPhase;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ShmemError>;

/// Everything that can go wrong in the OpenSHMEM layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmemError {
    /// An error surfaced from the NTB interconnect.
    Net(NtbError),
    /// A remote operation exhausted its retry budget: the link (or the
    /// peer) stayed unreachable through every retransmission. Surfaced in
    /// bounded time — never as a hang — so the application can fail over.
    LinkFailed {
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
    /// The symmetric heap cannot grow to satisfy an allocation.
    OutOfSymmetricMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// `free` of an address that is not the start of a live allocation.
    InvalidFree {
        /// Offending flat offset.
        offset: u64,
    },
    /// An access through a symmetric address fell outside its allocation.
    SymmetricBounds {
        /// Offending flat offset.
        offset: u64,
        /// Access length.
        len: u64,
    },
    /// A PE index outside `0..num_pes`.
    BadPe {
        /// The offending PE number.
        pe: usize,
        /// The world size.
        num_pes: usize,
    },
    /// `shmem_barrier_all` did not complete within the configured timeout
    /// (a peer died or diverged). Carries which protocol phase stalled and
    /// which neighbour PE the signal was expected from, so a hung run
    /// names its culprit instead of just "timed out".
    BarrierTimeout {
        /// The barrier phase that was in progress when time ran out.
        phase: BarrierPhase,
        /// The PE whose signal never arrived.
        waiting_on: usize,
    },
    /// A peer PE was confirmed dead by the heartbeat failure detector.
    /// Operations addressed to it (and collectives that require it, under
    /// [`DegradedPolicy::Fail`](crate::config::DegradedPolicy)) fail fast
    /// with this error instead of burning retry budgets.
    PeFailed {
        /// The dead PE.
        pe: usize,
        /// Membership epoch at which its death was recorded.
        epoch: u64,
    },
    /// `wait_until` exceeded the configured timeout.
    WaitTimeout,
    /// The interconnect shed the operation at admission: a bounded queue
    /// was full or the link's flow-control credits were exhausted, and
    /// the overload did not clear within the retry window. The operation
    /// was never transmitted — retrying later (or with backpressure on
    /// the offered load) is safe.
    Overloaded {
        /// Which bounded resource rejected the work.
        queue: &'static str,
    },
    /// The operation's [`OpOptions::deadline`](crate::config::OpOptions)
    /// expired before it completed. Work already staged toward the target
    /// is dropped at every hop once expired; the operation did not take
    /// effect at the target unless an ack raced the expiry.
    DeadlineExceeded,
    /// The runtime was misused (documented in the message).
    Runtime(&'static str),
}

impl fmt::Display for ShmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmemError::Net(e) => write!(f, "interconnect error: {e}"),
            ShmemError::LinkFailed { attempts } => {
                write!(f, "remote operation failed after {attempts} transmission attempts")
            }
            ShmemError::OutOfSymmetricMemory { requested } => {
                write!(f, "symmetric heap exhausted: {requested} bytes requested")
            }
            ShmemError::InvalidFree { offset } => {
                write!(f, "invalid shmem_free at offset {offset:#x}")
            }
            ShmemError::SymmetricBounds { offset, len } => {
                write!(f, "symmetric access out of bounds: offset {offset:#x}, len {len}")
            }
            ShmemError::BadPe { pe, num_pes } => {
                write!(f, "PE {pe} out of range (num_pes = {num_pes})")
            }
            ShmemError::BarrierTimeout { phase, waiting_on } => {
                write!(f, "shmem_barrier_all timed out in the {phase} waiting on PE {waiting_on}")
            }
            ShmemError::PeFailed { pe, epoch } => {
                write!(f, "PE {pe} confirmed dead at membership epoch {epoch}")
            }
            ShmemError::WaitTimeout => write!(f, "shmem_wait_until timed out"),
            ShmemError::Overloaded { queue } => {
                write!(f, "operation shed under overload ({queue} exhausted)")
            }
            ShmemError::DeadlineExceeded => {
                write!(f, "operation deadline expired before completion")
            }
            ShmemError::Runtime(msg) => write!(f, "runtime misuse: {msg}"),
        }
    }
}

impl std::error::Error for ShmemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShmemError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NtbError> for ShmemError {
    fn from(e: NtbError) -> Self {
        // Each arm lifts a net-layer verdict across the API boundary; the
        // net layer resolved its pending entry when it produced the error.
        match e {
            NtbError::LinkFailed { attempts } => ShmemError::LinkFailed { attempts }, // RESOLVES(none): conversion
            NtbError::PeFailed { pe, epoch } => ShmemError::PeFailed { pe, epoch }, // RESOLVES(none): conversion
            NtbError::Overloaded { queue } => ShmemError::Overloaded { queue }, // RESOLVES(none): conversion
            NtbError::DeadlineExceeded => ShmemError::DeadlineExceeded, // RESOLVES(none): conversion
            other => ShmemError::Net(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let bt = ShmemError::BarrierTimeout { phase: BarrierPhase::EndSweep, waiting_on: 3 };
        let s = bt.to_string();
        assert!(s.contains("barrier") && s.contains("end sweep") && s.contains("PE 3"), "{s}");
        assert!(ShmemError::OutOfSymmetricMemory { requested: 42 }.to_string().contains("42"));
        assert!(ShmemError::BadPe { pe: 9, num_pes: 3 }.to_string().contains("9"));
        assert!(ShmemError::InvalidFree { offset: 0x40 }.to_string().contains("0x40"));
        let pf = ShmemError::PeFailed { pe: 4, epoch: 7 }.to_string();
        assert!(pf.contains('4') && pf.contains('7'), "{pf}");
    }

    #[test]
    fn net_errors_convert_and_chain() {
        let e: ShmemError = NtbError::NotConnected.into();
        assert!(matches!(e, ShmemError::Net(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn link_failed_converts_to_typed_variant() {
        let e: ShmemError = NtbError::LinkFailed { attempts: 6 }.into();
        assert_eq!(e, ShmemError::LinkFailed { attempts: 6 });
        assert!(e.to_string().contains("6 transmission attempts"));
    }

    #[test]
    fn pe_failed_converts_to_typed_variant() {
        let e: ShmemError = NtbError::PeFailed { pe: 2, epoch: 5 }.into();
        assert_eq!(e, ShmemError::PeFailed { pe: 2, epoch: 5 });
    }

    #[test]
    fn overload_errors_convert_to_typed_variants() {
        let e: ShmemError = NtbError::Overloaded { queue: "link credit window" }.into();
        assert_eq!(e, ShmemError::Overloaded { queue: "link credit window" });
        assert!(e.to_string().contains("link credit window"), "{e}");
        let e: ShmemError = NtbError::DeadlineExceeded.into();
        assert_eq!(e, ShmemError::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"), "{e}");
    }
}
