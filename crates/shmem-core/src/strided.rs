//! Strided RMA: `shmem_TYPE_iput` / `shmem_TYPE_iget`.
//!
//! The classic strided transfers: `iput` copies `nelems` elements read
//! from the source at stride `sst` into the target's symmetric array at
//! stride `tst`; `iget` is the mirror image. The PEX DMA engine has no
//! scatter-gather descriptors in the paper's prototype, so strided
//! transfers decompose into per-element (or per-run) operations — with a
//! fast path when the *target* side is contiguous (`tst == 1`), which
//! batches into a single wire transfer.

use crate::ctx::{OpOptions, ShmemCtx};
use crate::error::{Result, ShmemError};
use crate::symmetric::TypedSym;
use crate::types::ShmemScalar;

impl ShmemCtx {
    /// `shmem_TYPE_iput`: for `i in 0..nelems`, write `src[i * sst]` into
    /// `sym[index + i * tst]` at PE `pe`. Locally blocking like `put`.
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    pub fn iput<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        tst: usize,
        src: &[T],
        sst: usize,
        nelems: usize,
        pe: usize,
    ) -> Result<()> {
        self.check_strides(src.len(), sst, nelems)?;
        if nelems == 0 {
            return Ok(());
        }
        if tst == 0 {
            return Err(ShmemError::Runtime("iput: target stride must be >= 1"));
        }
        let gathered: Vec<T> = (0..nelems).map(|i| src[i * sst]).collect();
        if tst == 1 {
            // Contiguous target: one wire transfer.
            return self.put_slice(sym, index, &gathered, pe);
        }
        for (i, v) in gathered.into_iter().enumerate() {
            self.put(sym, index + i * tst, v, pe)?;
        }
        Ok(())
    }

    /// `shmem_TYPE_iget`: for `i in 0..nelems`, read `sym[index + i * sst]`
    /// from PE `pe`; element `i` of the result corresponds to target
    /// stride position `i` (the caller scatters into its own buffer).
    pub fn iget<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        sst: usize,
        nelems: usize,
        pe: usize,
    ) -> Result<Vec<T>> {
        self.iget_opts(sym, index, sst, nelems, pe, OpOptions::new())
    }

    /// [`iget`](Self::iget) with explicit [`OpOptions`]: deadlines,
    /// transfer mode, and the get pipeline window apply to the covering
    /// transfer exactly as they do for [`get_slice_opts`](Self::get_slice_opts).
    pub fn iget_opts<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        sst: usize,
        nelems: usize,
        pe: usize,
        opts: OpOptions,
    ) -> Result<Vec<T>> {
        if sst == 0 {
            return Err(ShmemError::Runtime("iget: source stride must be >= 1"));
        }
        if nelems == 0 {
            return Ok(Vec::new());
        }
        if sst == 1 {
            // Contiguous source: one wire transfer.
            return self.get_slice_opts(sym, index, nelems, pe, opts);
        }
        // Fetch the covering range in one transfer and pick the strided
        // elements locally — one round trip instead of `nelems`.
        let span = (nelems - 1) * sst + 1;
        let covering = self.get_slice_opts::<T>(sym, index, span, pe, opts)?;
        Ok((0..nelems).map(|i| covering[i * sst]).collect())
    }

    fn check_strides(&self, src_len: usize, sst: usize, nelems: usize) -> Result<()> {
        if sst == 0 {
            return Err(ShmemError::Runtime("iput: source stride must be >= 1"));
        }
        if nelems > 0 && (nelems - 1) * sst >= src_len {
            return Err(ShmemError::Runtime("iput: strided read exceeds the source slice"));
        }
        Ok(())
    }
}
