//! # shmem-core — the OpenSHMEM programming model over a switchless PCIe
//! NTB ring
//!
//! This crate is the paper's primary contribution: an OpenSHMEM library
//! whose transport is the switchless NTB interconnect of `ntb-net` rather
//! than InfiniBand or Ethernet verbs.
//!
//! * [`runtime::ShmemWorld::run`] — `shmem_init` / `shmem_finalize`: ring
//!   setup, symmetric-heap creation, service threads, one thread per PE.
//! * [`heap::SymmetricHeap`] — the chunked, virtually contiguous symmetric
//!   heap of paper Fig. 3, with identical offsets on every PE.
//! * [`ctx::ShmemCtx`] — the Table-I API: `my_pe`, `num_pes`,
//!   `shmem_malloc`, typed put/get (DMA or PIO-memcpy data path),
//!   `shmem_barrier_all` (the two-round ring sweep of Fig. 6), plus the
//!   essential extensions of §II-B: remote atomics, broadcast,
//!   reductions, collect/all-to-all, distributed locks and
//!   `wait_until`/`test`.
//!
//! ```
//! use shmem_core::{ShmemConfig, ShmemWorld};
//!
//! // Three PEs pass a token around the ring.
//! let sums = ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(3), |ctx| {
//!     let sym = ctx.malloc_array::<u64>(1).unwrap();
//!     let right = (ctx.my_pe() + 1) % ctx.num_pes();
//!     ctx.put(&sym, 0, ctx.my_pe() as u64 + 1, right).unwrap();
//!     ctx.barrier_all().unwrap();
//!     ctx.read_local(&sym, 0).unwrap()
//! })
//! .unwrap();
//! assert_eq!(sums.iter().sum::<u64>(), 1 + 2 + 3);
//! ```

pub mod atomics;
pub mod barrier;
pub mod capi;
pub mod collectives;
pub mod config;
pub mod ctx;
pub mod error;
pub mod heap;
pub mod lock;
pub mod runtime;
pub mod signal;
pub mod strided;
pub mod symmetric;
pub mod sync;
pub mod teams;
pub mod types;

pub use barrier::BarrierPhase;
pub use capi::CApi;
pub use collectives::{ReduceOp, ShmemReduce};
pub use config::{BarrierAlgorithm, DegradedPolicy, ShmemConfig, ShmemConfigBuilder};
pub use ctx::{OpOptions, ShmemCtx};
pub use error::{Result, ShmemError};
pub use heap::SymmetricHeap;
pub use runtime::ShmemWorld;
pub use signal::SignalOp;
pub use symmetric::{SymAddr, TypedSym};
pub use sync::CmpOp;
pub use teams::{ActiveSet, Team};
pub use types::{ShmemAtomicInt, ShmemScalar};

// Re-export the knobs callers configure through us.
pub use ntb_net::{HeartbeatConfig, OverloadConfig, Shape, Topology};
pub use ntb_sim::{TimeModel, TransferMode};

/// The curated import surface for applications and examples:
/// `use shmem_core::prelude::*;` brings in the world, the context, the
/// config builder, per-op options and the common value types.
pub mod prelude {
    pub use crate::barrier::BarrierPhase;
    pub use crate::collectives::{ReduceOp, ShmemReduce};
    pub use crate::config::{BarrierAlgorithm, DegradedPolicy, ShmemConfig, ShmemConfigBuilder};
    pub use crate::ctx::{OpOptions, PeStats, ShmemCtx};
    pub use crate::error::{Result, ShmemError};
    pub use crate::runtime::ShmemWorld;
    pub use crate::signal::SignalOp;
    pub use crate::symmetric::{SymAddr, TypedSym};
    pub use crate::sync::CmpOp;
    pub use crate::teams::{ActiveSet, Team};
    pub use crate::types::{ShmemAtomicInt, ShmemScalar};
    pub use ntb_net::{HeartbeatConfig, OverloadConfig, Shape, Topology};
    pub use ntb_sim::{FaultPlan, TimeModel, TransferMode};
}
