//! The per-PE OpenSHMEM context: Table I's API surface.
//!
//! | OpenSHMEM routine (Table I)  | `ShmemCtx` equivalent |
//! |------------------------------|------------------------|
//! | `shmem_init()`               | [`ShmemWorld::run`](crate::runtime::ShmemWorld::run) performs the NTB setup, id exchange and service-thread creation before the PE closure runs |
//! | `my_pe()`                    | [`ShmemCtx::my_pe`] |
//! | `num_pes()`                  | [`ShmemCtx::num_pes`] |
//! | `shmem_malloc(size)`         | [`ShmemCtx::malloc`] / [`ShmemCtx::malloc_array`] |
//! | `shmem_TYPE_put(...)`        | [`ShmemCtx::put_slice`] / [`ShmemCtx::put`] (generic over the type) |
//! | `shmem_TYPE_get(...)`        | [`ShmemCtx::get_slice`] / [`ShmemCtx::get`] |
//! | `shmem_barrier_all()`        | [`ShmemCtx::barrier_all`](crate::barrier) |
//! | `shmem_finalize()`           | automatic at the end of `ShmemWorld::run` |
//!
//! Beyond Table I, the essential-features list of §II-B (atomics,
//! broadcast, reductions, distributed locking, synchronization) is covered
//! by the `atomics`, `collectives`, `lock` and `sync` modules, all as
//! methods on this same context.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ntb_net::NtbNode;
use ntb_sim::{EventKind, OpClass, TransferMode};

use crate::config::ShmemConfig;
use crate::error::{Result, ShmemError};
use crate::heap::SymmetricHeap;
use crate::symmetric::{SymAddr, TypedSym};
use crate::types::ShmemScalar;

/// Per-operation options for put/get, replacing the old
/// `put_slice` / `put_slice_with_mode` / `put_slice_nbi` triplet (and its
/// get-side mirror) with one builder:
///
/// ```
/// use shmem_core::prelude::*;
/// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
///     let sym = ctx.calloc_array::<u32>(4).unwrap();
///     if ctx.my_pe() == 0 {
///         // Batch both puts behind one coalesced doorbell; quiet()
///         // flushes and awaits delivery.
///         let opts = OpOptions::new().coalesce(true);
///         ctx.put_slice_opts(&sym, 0, &[1, 2], 1, opts).unwrap();
///         ctx.put_slice_opts(&sym, 2, &[3, 4], 1, opts).unwrap();
///         ctx.quiet().unwrap();
///     }
///     ctx.barrier_all().unwrap();
/// })
/// .unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOptions {
    /// Data path override; `None` uses the world's
    /// [`default_mode`](crate::config::ShmemConfig::default_mode) (or the
    /// size-based choice when `dma_threshold` is set).
    pub mode: Option<TransferMode>,
    /// `true` (default) rings the doorbell before the call returns;
    /// `false` is the `_nbi` contract — staging only, with
    /// [`quiet`](ShmemCtx::quiet) as the completion point.
    pub blocking: bool,
    /// Defer the doorbell so consecutive puts coalesce into one
    /// interrupt (flushed at the transmit ring's batch cap or the next
    /// `quiet`/`fence`/barrier).
    pub coalesce: bool,
    /// Size-based mode selection: payloads at or below the threshold go
    /// by PIO memcpy, larger ones by DMA (the paper's Fig. 9 crossover).
    /// An explicit `mode` wins over the threshold.
    pub dma_threshold: Option<u64>,
    /// Bound the operation's total time. The deadline travels with every
    /// frame the operation stages: hops drop expired work instead of
    /// forwarding it, admission waits give up once it passes, and the
    /// operation surfaces
    /// [`ShmemError::DeadlineExceeded`](crate::error::ShmemError) instead
    /// of burning retry budget on work nobody wants anymore. `None`
    /// (default) keeps the retry policy's own bounded-time behaviour.
    pub deadline: Option<std::time::Duration>,
    /// Get pipeline depth override: how many get sub-requests this
    /// operation keeps in flight at once (`1` = stop-and-wait). `None`
    /// (default) uses the world's
    /// [`get_window`](crate::config::ShmemConfig::with_get_pipeline).
    pub get_window: Option<usize>,
}

impl Default for OpOptions {
    fn default() -> Self {
        OpOptions {
            mode: None,
            blocking: true,
            coalesce: false,
            dma_threshold: None,
            deadline: None,
            get_window: None,
        }
    }
}

impl OpOptions {
    /// Defaults: world's transfer mode, blocking, doorbell per call.
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-blocking-implicit preset (`shmem_*_nbi`): staging only,
    /// doorbell deferred, completion at `quiet`.
    pub fn nbi() -> Self {
        OpOptions { blocking: false, coalesce: true, ..Self::default() }
    }

    /// Pin the data path (DMA or PIO memcpy) for this operation.
    pub fn mode(mut self, mode: TransferMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Choose blocking (doorbell before return) or nbi semantics.
    pub fn blocking(mut self, on: bool) -> Self {
        self.blocking = on;
        self
    }

    /// Enable doorbell coalescing across consecutive puts.
    pub fn coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Pick DMA vs PIO by payload size instead of a fixed mode.
    pub fn dma_threshold(mut self, bytes: u64) -> Self {
        self.dma_threshold = Some(bytes);
        self
    }

    /// Bound the operation's total time (see [`OpOptions::deadline`]):
    ///
    /// ```
    /// use std::time::Duration;
    /// use shmem_core::prelude::*;
    /// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
    ///     let sym = ctx.calloc_array::<u32>(2).unwrap();
    ///     if ctx.my_pe() == 0 {
    ///         let opts = OpOptions::new().deadline(Duration::from_secs(5));
    ///         ctx.put_slice_opts(&sym, 0, &[1, 2], 1, opts).unwrap();
    ///         ctx.quiet().unwrap();
    ///     }
    ///     ctx.barrier_all().unwrap();
    /// })
    /// .unwrap();
    /// ```
    pub fn deadline(mut self, bound: std::time::Duration) -> Self {
        self.deadline = Some(bound);
        self
    }

    /// Pin the get pipeline depth for this operation: `1` forces
    /// stop-and-wait (each sub-request fully completes before the next
    /// is issued), larger values overlap the responder's service time
    /// with response transfers on large gets.
    pub fn get_window(mut self, window: usize) -> Self {
        self.get_window = Some(window);
        self
    }

    /// The transfer mode this operation actually uses for `len` payload
    /// bytes, given the world default.
    pub(crate) fn effective_mode(&self, len: usize, default: TransferMode) -> TransferMode {
        if let Some(mode) = self.mode {
            return mode;
        }
        match self.dma_threshold {
            Some(t) if (len as u64) <= t => TransferMode::Memcpy,
            Some(_) => TransferMode::Dma,
            None => default,
        }
    }

    /// Whether the transport should withhold the doorbell (coalesced or
    /// nbi operation).
    pub(crate) fn defer_doorbell(&self) -> bool {
        self.coalesce || !self.blocking
    }
}

/// One PE's handle to the OpenSHMEM world. Created by
/// [`ShmemWorld::run`](crate::runtime::ShmemWorld::run); every routine of
/// the model hangs off it.
pub struct ShmemCtx {
    pub(crate) node: Arc<NtbNode>,
    pub(crate) heap: Arc<SymmetricHeap>,
    pub(crate) cfg: ShmemConfig,
    /// Round flags of the dissemination barrier (one epoch word per
    /// round; allocated identically on every PE during init).
    pub(crate) barrier_flags: TypedSym<u64>,
    /// Monotonic epoch of the dissemination barrier.
    pub(crate) barrier_epoch: std::sync::atomic::AtomicU64,
    /// Round flags of the degraded-membership barrier (separate from
    /// `barrier_flags` so full-strength and degraded barriers can never
    /// confuse each other's signals).
    pub(crate) degraded_flags: TypedSym<u64>,
    /// Monotonic epoch of the degraded-membership barrier.
    pub(crate) degraded_epoch: AtomicU64,
    /// Monotonic id generator for API-level trace events (put/get/AMO
    /// issue/complete pairs share one id).
    pub(crate) api_op: AtomicU64,
    /// Monotonic barrier count for trace epochs. Barriers are collective
    /// and every PE calls them in the same order, so the count names the
    /// same barrier on every PE.
    pub(crate) barrier_trace_epoch: AtomicU64,
}

/// Rounds reserved for the dissemination barrier (supports up to 2^64
/// PEs; the frame format caps the world at 64 anyway).
const BARRIER_ROUNDS: usize = 8;

impl ShmemCtx {
    pub(crate) fn new(node: Arc<NtbNode>, cfg: ShmemConfig) -> Result<ShmemCtx> {
        let heap = SymmetricHeap::new(Arc::clone(node.memory()), cfg.heap_chunk);
        node.set_delivery(Arc::clone(&heap) as Arc<dyn ntb_net::DeliveryTarget>);
        // Publishing the heap through the link apertures lets direct
        // neighbours serve small gets with one PIO window read instead
        // of the full request/response round trip.
        node.publish_aperture(Arc::clone(&heap) as Arc<dyn ntb_sim::ReadAperture>);
        // Pre-user symmetric allocation: every PE performs it identically
        // during init, so offsets match without a barrier (no peer is
        // running user code yet).
        let flags_addr = heap.malloc((BARRIER_ROUNDS * <u64 as ShmemScalar>::WIDTH) as u64)?;
        heap.fill_flat(flags_addr.offset(), flags_addr.len(), 0)?;
        let barrier_flags = TypedSym::new(flags_addr, BARRIER_ROUNDS)?;
        let degraded_addr = heap.malloc((BARRIER_ROUNDS * <u64 as ShmemScalar>::WIDTH) as u64)?;
        heap.fill_flat(degraded_addr.offset(), degraded_addr.len(), 0)?;
        let degraded_flags = TypedSym::new(degraded_addr, BARRIER_ROUNDS)?;
        Ok(ShmemCtx {
            node,
            heap,
            cfg,
            barrier_flags,
            barrier_epoch: std::sync::atomic::AtomicU64::new(0),
            degraded_flags,
            degraded_epoch: AtomicU64::new(0),
            api_op: AtomicU64::new(0),
            barrier_trace_epoch: AtomicU64::new(0),
        })
    }

    /// Fresh id for an API-level trace event pair.
    pub(crate) fn next_api_op(&self) -> u64 {
        // lint: relaxed-ok(unique id allocation; uniqueness needs atomicity, not ordering)
        self.api_op.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn finalize(&self) {
        self.node.clear_aperture();
        self.node.clear_delivery();
    }

    /// This PE's integer identity (`my_pe()`).
    pub fn my_pe(&self) -> usize {
        self.node.host_id()
    }

    /// Number of PEs executing the application (`num_pes()`).
    pub fn num_pes(&self) -> usize {
        self.node.num_hosts()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &ShmemConfig {
        &self.cfg
    }

    /// The default data path for puts/gets.
    pub fn default_mode(&self) -> TransferMode {
        self.cfg.default_mode
    }

    /// The underlying interconnect node (stats, raw transfers — used by
    /// the benchmark harness).
    pub fn node(&self) -> &Arc<NtbNode> {
        &self.node
    }

    /// This PE's symmetric heap (introspection and tests).
    pub fn heap(&self) -> &Arc<SymmetricHeap> {
        &self.heap
    }

    /// PEs this node's heartbeat failure detector currently believes
    /// alive. With the detector disabled this is always every PE.
    pub fn live_pes(&self) -> Vec<usize> {
        self.node.membership().live_pes()
    }

    /// Whether `pe` is currently believed alive.
    pub fn is_pe_live(&self, pe: usize) -> bool {
        self.node.membership().is_live(pe)
    }

    /// The current membership epoch (bumps on every confirmed death and
    /// every rejoin; 0 until the first transition).
    pub fn membership_epoch(&self) -> u64 {
        self.node.membership().epoch()
    }

    pub(crate) fn check_pe(&self, pe: usize) -> Result<()> {
        if pe >= self.num_pes() {
            return Err(ShmemError::BadPe { pe, num_pes: self.num_pes() });
        }
        Ok(())
    }

    /// Resolve an [`OpOptions`] deadline into the wire representation
    /// (absolute microseconds on the network's shared clock; 0 = none).
    pub(crate) fn wire_deadline(&self, opts: &OpOptions) -> u32 {
        opts.deadline.map_or(0, |d| self.node.deadline_us_in(d))
    }

    // ------------------------------------------------------------------
    // Symmetric allocation (shmem_malloc / shmem_free)
    // ------------------------------------------------------------------

    /// Allocate `size` bytes of symmetric memory (`shmem_malloc`).
    ///
    /// Collective: every PE must call it with the same size in the same
    /// order; it barriers on exit as the OpenSHMEM spec requires, which
    /// also guarantees the allocation exists everywhere before any PE
    /// touches it remotely.
    pub fn malloc(&self, size: u64) -> Result<SymAddr> {
        let addr = self.heap.malloc(size)?;
        self.barrier_all()?;
        Ok(addr)
    }

    /// Allocate a symmetric array of `count` elements of `T`
    /// (`shmem_malloc` + typing).
    ///
    /// Like `shmem_malloc`, the memory is **not** zeroed when it recycles
    /// previously freed heap space — use [`calloc_array`](Self::calloc_array)
    /// for guaranteed-zero contents.
    pub fn malloc_array<T: ShmemScalar>(&self, count: usize) -> Result<TypedSym<T>> {
        let addr = self.malloc((count * T::WIDTH) as u64)?;
        TypedSym::new(addr, count)
    }

    /// Allocate symmetric memory whose offset is a multiple of `align`
    /// (`shmem_align`). Collective.
    pub fn malloc_aligned(&self, size: u64, align: u64) -> Result<SymAddr> {
        let addr = self.heap.malloc_aligned(size, align)?;
        self.barrier_all()?;
        Ok(addr)
    }

    /// Allocate zero-initialized symmetric memory (`shmem_calloc`).
    /// Collective; on return every PE's copy is zeroed.
    pub fn calloc(&self, size: u64) -> Result<SymAddr> {
        let addr = self.heap.malloc(size)?;
        self.heap.fill_flat(addr.offset(), addr.len(), 0)?;
        self.barrier_all()?;
        Ok(addr)
    }

    /// Allocate a zero-initialized symmetric array (`shmem_calloc` +
    /// typing). Collective.
    pub fn calloc_array<T: ShmemScalar>(&self, count: usize) -> Result<TypedSym<T>> {
        let addr = self.calloc((count * T::WIDTH) as u64)?;
        TypedSym::new(addr, count)
    }

    /// Release a symmetric allocation (`shmem_free`). Collective: the
    /// entry barrier guarantees no PE is still accessing it.
    pub fn free(&self, addr: SymAddr) -> Result<()> {
        self.barrier_all()?;
        self.heap.free(addr)
    }

    /// Release a typed symmetric array.
    pub fn free_array<T: ShmemScalar>(&self, sym: TypedSym<T>) -> Result<()> {
        self.free(sym.addr())
    }

    // ------------------------------------------------------------------
    // RMA: put / get (shmem_TYPE_put / shmem_TYPE_get and friends)
    // ------------------------------------------------------------------

    /// `shmem_TYPE_put` with explicit [`OpOptions`]: copy `data` into PE
    /// `pe`'s symmetric array at element `index`. Locally blocking:
    /// returns once `data` is reusable; remote delivery is asynchronous
    /// and ordered by [`quiet`](Self::quiet) / barriers. With
    /// [`OpOptions::coalesce`] (or `blocking(false)`) the doorbell is
    /// additionally deferred — frames stage in the transmit ring and one
    /// doorbell covers the whole batch at the ring's cap or the next
    /// `quiet`.
    pub fn put_slice_opts<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
        pe: usize,
        opts: OpOptions,
    ) -> Result<()> {
        self.check_pe(pe)?;
        let off = sym.elem_offset(index, data.len())?;
        let bytes = T::slice_to_bytes(data);
        if pe == self.my_pe() {
            self.heap.write_flat(off, &bytes)?;
            self.heap.bump_version();
            return Ok(());
        }
        let mode = opts.effective_mode(bytes.len(), self.cfg.default_mode);
        let defer = opts.defer_doorbell();
        let deadline_us = self.wire_deadline(&opts);
        let obs = self.node.obs();
        if obs.is_enabled() {
            let op = self.next_api_op();
            let t0 = Instant::now();
            obs.emit(EventKind::ApiPutIssue, op, [pe as u64, bytes.len() as u64]);
            self.node.put_bytes_opts(pe, off, &bytes, mode, defer, deadline_us)?;
            self.node.metrics().record_op(OpClass::Put, t0.elapsed().as_micros() as u64);
            obs.emit(EventKind::ApiPutComplete, op, [pe as u64, 0]);
        } else {
            self.node.put_bytes_opts(pe, off, &bytes, mode, defer, deadline_us)?;
        }
        Ok(())
    }

    /// `shmem_TYPE_put` with an explicit transfer mode.
    #[deprecated(since = "0.1.0", note = "use put_slice_opts with OpOptions::new().mode(..)")]
    pub fn put_slice_with_mode<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
        pe: usize,
        mode: TransferMode,
    ) -> Result<()> {
        self.put_slice_opts(sym, index, data, pe, OpOptions::new().mode(mode))
    }

    /// `shmem_TYPE_put` with the default transfer mode.
    ///
    /// ```
    /// use shmem_core::{ShmemConfig, ShmemWorld};
    /// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
    ///     let sym = ctx.calloc_array::<u32>(4).unwrap();
    ///     if ctx.my_pe() == 0 {
    ///         ctx.put_slice(&sym, 0, &[10, 20, 30, 40], 1).unwrap();
    ///     }
    ///     ctx.barrier_all().unwrap();
    ///     if ctx.my_pe() == 1 {
    ///         assert_eq!(ctx.read_local_slice::<u32>(&sym, 0, 4).unwrap(), vec![10, 20, 30, 40]);
    ///     }
    /// })
    /// .unwrap();
    /// ```
    pub fn put_slice<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
        pe: usize,
    ) -> Result<()> {
        self.put_slice_opts(sym, index, data, pe, OpOptions::new())
    }

    /// Put a single element (`shmem_TYPE_p`).
    pub fn put<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<()> {
        self.put_slice(sym, index, &[value], pe)
    }

    /// Non-blocking put (`shmem_TYPE_put_nbi`): equivalent to
    /// `put_slice_opts` with [`OpOptions::nbi`] — the doorbell is
    /// deferred and `quiet` is the completion point.
    #[deprecated(since = "0.1.0", note = "use put_slice_opts with OpOptions::nbi()")]
    pub fn put_slice_nbi<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
        pe: usize,
    ) -> Result<()> {
        self.put_slice_opts(sym, index, data, pe, OpOptions::nbi())
    }

    /// `shmem_TYPE_get` with explicit [`OpOptions`]: copy `count`
    /// elements from PE `pe`'s symmetric array at element `index`. Blocks
    /// until the data arrived (gets need their result; `blocking(false)`
    /// is accepted and completes eagerly, matching the model's nbi
    /// semantics).
    pub fn get_slice_opts<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        pe: usize,
        opts: OpOptions,
    ) -> Result<Vec<T>> {
        self.check_pe(pe)?;
        let off = sym.elem_offset(index, count)?;
        let len = (count * T::WIDTH) as u64;
        let bytes = if pe == self.my_pe() {
            self.heap.read_flat_vec(off, len)?
        } else {
            let mode = opts.effective_mode(len as usize, self.cfg.default_mode);
            let deadline_us = self.wire_deadline(&opts);
            let fetch = || match opts.get_window {
                Some(w) => self.node.get_bytes_windowed(pe, off, len, mode, deadline_us, w),
                None => self.node.get_bytes_opts(pe, off, len, mode, deadline_us),
            };
            let obs = self.node.obs();
            if obs.is_enabled() {
                let op = self.next_api_op();
                let t0 = Instant::now();
                obs.emit(EventKind::ApiGetIssue, op, [pe as u64, len]);
                let bytes = fetch()?;
                self.node.metrics().record_op(OpClass::Get, t0.elapsed().as_micros() as u64);
                obs.emit(EventKind::ApiGetComplete, op, [pe as u64, 0]);
                bytes
            } else {
                fetch()?
            }
        };
        Ok(T::bytes_to_vec(&bytes))
    }

    /// `shmem_TYPE_get` with an explicit transfer mode.
    #[deprecated(since = "0.1.0", note = "use get_slice_opts with OpOptions::new().mode(..)")]
    pub fn get_slice_with_mode<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        pe: usize,
        mode: TransferMode,
    ) -> Result<Vec<T>> {
        self.get_slice_opts(sym, index, count, pe, OpOptions::new().mode(mode))
    }

    /// `shmem_TYPE_get` with the default transfer mode.
    ///
    /// ```
    /// use shmem_core::{ShmemConfig, ShmemWorld};
    /// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
    ///     let sym = ctx.calloc_array::<f64>(2).unwrap();
    ///     ctx.write_local_slice(&sym, 0, &[ctx.my_pe() as f64, 0.5]).unwrap();
    ///     ctx.barrier_all().unwrap();
    ///     let other = 1 - ctx.my_pe();
    ///     let theirs = ctx.get_slice::<f64>(&sym, 0, 2, other).unwrap();
    ///     assert_eq!(theirs, vec![other as f64, 0.5]);
    ///     ctx.barrier_all().unwrap();
    /// })
    /// .unwrap();
    /// ```
    pub fn get_slice<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        pe: usize,
    ) -> Result<Vec<T>> {
        self.get_slice_opts(sym, index, count, pe, OpOptions::new())
    }

    /// Get a single element (`shmem_TYPE_g`).
    pub fn get<T: ShmemScalar>(&self, sym: &TypedSym<T>, index: usize, pe: usize) -> Result<T> {
        Ok(self.get_slice(sym, index, 1, pe)?[0])
    }

    /// Non-blocking get (`shmem_TYPE_get_nbi`); completion at `quiet`.
    /// This model completes it eagerly (see [`OpOptions::nbi`]).
    #[deprecated(since = "0.1.0", note = "use get_slice_opts with OpOptions::nbi()")]
    pub fn get_slice_nbi<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
        pe: usize,
    ) -> Result<Vec<T>> {
        self.get_slice_opts(sym, index, count, pe, OpOptions::nbi())
    }

    // ------------------------------------------------------------------
    // Local access to symmetric memory
    // ------------------------------------------------------------------

    /// Read this PE's own copy of a symmetric array slice.
    pub fn read_local_slice<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        count: usize,
    ) -> Result<Vec<T>> {
        let off = sym.elem_offset(index, count)?;
        let bytes = self.heap.read_flat_vec(off, (count * T::WIDTH) as u64)?;
        Ok(T::bytes_to_vec(&bytes))
    }

    /// Read one element of this PE's own copy.
    pub fn read_local<T: ShmemScalar>(&self, sym: &TypedSym<T>, index: usize) -> Result<T> {
        Ok(self.read_local_slice(sym, index, 1)?[0])
    }

    /// Write this PE's own copy of a symmetric array slice.
    pub fn write_local_slice<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        data: &[T],
    ) -> Result<()> {
        let off = sym.elem_offset(index, data.len())?;
        self.heap.write_flat(off, &T::slice_to_bytes(data))?;
        self.heap.bump_version();
        Ok(())
    }

    /// Write one element of this PE's own copy.
    pub fn write_local<T: ShmemScalar>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
    ) -> Result<()> {
        self.write_local_slice(sym, index, &[value])
    }

    // ------------------------------------------------------------------
    // Ordering (shmem_quiet / shmem_fence)
    // ------------------------------------------------------------------

    /// `shmem_quiet`: block until every put this PE issued has been
    /// delivered into its destination's symmetric memory (tracked by the
    /// interconnect's delivery acknowledgements).
    ///
    /// ```
    /// use shmem_core::{CmpOp, ShmemConfig, ShmemWorld};
    /// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
    ///     let data = ctx.calloc_array::<u64>(1).unwrap();
    ///     let flag = ctx.calloc_array::<u64>(1).unwrap();
    ///     if ctx.my_pe() == 0 {
    ///         ctx.put(&data, 0, 42u64, 1).unwrap();
    ///         ctx.quiet().unwrap(); // 42 is now in PE 1's memory...
    ///         ctx.put(&flag, 0, 1u64, 1).unwrap(); // ...before the flag can arrive
    ///     } else {
    ///         ctx.wait_until(&flag, 0, CmpOp::Eq, 1u64).unwrap();
    ///         assert_eq!(ctx.read_local::<u64>(&data, 0).unwrap(), 42);
    ///     }
    ///     ctx.barrier_all().unwrap();
    /// })
    /// .unwrap();
    /// ```
    ///
    /// On a lossy link the wait is bounded: a put whose retransmission
    /// budget is exhausted surfaces as
    /// [`ShmemError::LinkFailed`](crate::error::ShmemError::LinkFailed)
    /// instead of hanging. A pending put whose
    /// [`OpOptions::deadline`] expired surfaces as
    /// [`ShmemError::DeadlineExceeded`](crate::error::ShmemError::DeadlineExceeded)
    /// (a whole-PE death still outranks it), so `quiet` and `fence`
    /// terminate no later than the shortest pending deadline plus one
    /// sweeper tick.
    pub fn quiet(&self) -> Result<()> {
        let obs = self.node.obs();
        if obs.is_enabled() {
            let op = self.next_api_op();
            let t0 = Instant::now();
            obs.emit(EventKind::QuietStart, op, [0, 0]);
            let result = self.node.quiet();
            self.node.metrics().record_op(OpClass::Quiet, t0.elapsed().as_micros() as u64);
            obs.emit(EventKind::QuietEnd, op, [u64::from(result.is_err()), 0]);
            result?;
        } else {
            self.node.quiet()?;
        }
        Ok(())
    }

    /// `shmem_fence`: order puts to each destination. The ring transport
    /// delivers frames per link in FIFO order, but multi-hop routes can
    /// reorder against single-hop ones, so fence is implemented as quiet
    /// (a conservative, spec-compliant strengthening).
    pub fn fence(&self) -> Result<()> {
        let obs = self.node.obs();
        if obs.is_enabled() {
            obs.emit(EventKind::Fence, self.next_api_op(), [0, 0]);
        }
        self.quiet()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// This PE's metrics registry (op-latency histograms and per-link
    /// counters), populated while structured tracing is enabled.
    pub fn metrics(&self) -> &Arc<ntb_sim::MetricsRegistry> {
        self.node.metrics()
    }

    /// This PE's counters and metrics as one JSON object:
    /// `{"pe": .., "stats": {..}, "metrics": {"ops": .., "links": ..}}`.
    pub fn metrics_json(&self) -> String {
        format!(
            "{{\"pe\":{},\"stats\":{},\"metrics\":{}}}",
            self.my_pe(),
            self.stats_snapshot().to_json(),
            self.node.metrics().to_json()
        )
    }

    /// Snapshot of this PE's communication counters (protocol activity
    /// plus raw bytes through both NTB adapters).
    pub fn stats_snapshot(&self) -> PeStats {
        // lint: relaxed-ok(monotonic stats counters, snapshot for reporting only)
        let ld = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        let s = self.node.stats();
        let mut bytes_tx = 0;
        let mut bytes_rx = 0;
        for i in 0..self.node.num_links() {
            let p = self.node.port_stats_at(i);
            bytes_tx += p.bytes_tx;
            bytes_rx += p.bytes_rx;
        }
        let metrics = self.node.metrics();
        let mut router_drops = 0;
        let mut deadline_sheds = 0;
        let mut overload_sheds = 0;
        let mut retry_sheds = 0;
        for i in 0..metrics.link_count() {
            if let Some(l) = metrics.link(i) {
                router_drops += ld(&l.router_drops);
                deadline_sheds += ld(&l.deadline_sheds);
                overload_sheds += ld(&l.overload_sheds);
                retry_sheds += ld(&l.retry_sheds);
            }
        }
        PeStats {
            frames_rx: ld(&s.frames_rx),
            forwards: ld(&s.forwards),
            puts_delivered: ld(&s.puts_delivered),
            gets_served: ld(&s.gets_served),
            acks_received: ld(&s.acks_received),
            amos_served: ld(&s.amos_served),
            retransmits: ld(&s.retransmits),
            checksum_rejects: ld(&s.checksum_rejects),
            reroutes: ld(&s.reroutes),
            duplicates_suppressed: ld(&s.duplicates_suppressed),
            probes_sent: ld(&s.probes_sent),
            link_down_events: ld(&s.link_down_events),
            router_drops,
            deadline_sheds,
            overload_sheds,
            retry_sheds,
            bytes_tx,
            bytes_rx,
            heap_capacity: self.heap.capacity(),
            heap_live_bytes: self.heap.live_bytes(),
        }
    }
}

/// A point-in-time view of one PE's communication and memory counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Frames handled by this host's service threads.
    pub frames_rx: u64,
    /// Frames forwarded around the ring (this host as intermediate).
    pub forwards: u64,
    /// Put chunks delivered into this PE's symmetric memory.
    pub puts_delivered: u64,
    /// Get requests served from this PE's symmetric memory.
    pub gets_served: u64,
    /// Put acknowledgements returned to this origin.
    pub acks_received: u64,
    /// Atomic operations executed at this PE.
    pub amos_served: u64,
    /// Frames retransmitted after an acknowledgement timeout.
    pub retransmits: u64,
    /// Inbound frames dropped on a payload CRC mismatch.
    pub checksum_rejects: u64,
    /// Sends steered away from a `Down` link (the long way around).
    pub reroutes: u64,
    /// Duplicate deliveries suppressed (retransmission idempotency).
    pub duplicates_suppressed: u64,
    /// Probe writes issued to `Down` links.
    pub probes_sent: u64,
    /// Link-endpoint transitions into the `Down` state.
    pub link_down_events: u64,
    /// Frames the router discarded instead of forwarding (out-of-range
    /// header fields, or a destination PE known dead) — previously silent
    /// drops, now counted.
    pub router_drops: u64,
    /// Work dropped because its deadline expired (at admission, at a
    /// forwarding hop, or in the retry sweeper).
    pub deadline_sheds: u64,
    /// Work rejected at admission under overload: a bounded queue was
    /// full or flow-control credits were exhausted.
    pub overload_sheds: u64,
    /// Retransmissions shed because a link's retry budget ran dry.
    pub retry_sheds: u64,
    /// Bytes transmitted through both NTB adapters.
    pub bytes_tx: u64,
    /// Bytes received through both NTB adapters.
    pub bytes_rx: u64,
    /// Symmetric heap capacity (bytes).
    pub heap_capacity: u64,
    /// Bytes inside live symmetric allocations.
    pub heap_live_bytes: u64,
}

impl PeStats {
    /// Render the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames_rx\":{},\"forwards\":{},\"puts_delivered\":{},\"gets_served\":{},\
             \"acks_received\":{},\"amos_served\":{},\"retransmits\":{},\
             \"checksum_rejects\":{},\"reroutes\":{},\"duplicates_suppressed\":{},\
             \"probes_sent\":{},\"link_down_events\":{},\"router_drops\":{},\
             \"deadline_sheds\":{},\"overload_sheds\":{},\"retry_sheds\":{},\
             \"bytes_tx\":{},\"bytes_rx\":{},\
             \"heap_capacity\":{},\"heap_live_bytes\":{}}}",
            self.frames_rx,
            self.forwards,
            self.puts_delivered,
            self.gets_served,
            self.acks_received,
            self.amos_served,
            self.retransmits,
            self.checksum_rejects,
            self.reroutes,
            self.duplicates_suppressed,
            self.probes_sent,
            self.link_down_events,
            self.router_drops,
            self.deadline_sheds,
            self.overload_sheds,
            self.retry_sheds,
            self.bytes_tx,
            self.bytes_rx,
            self.heap_capacity,
            self.heap_live_bytes
        )
    }

    /// Sum of the recovery-path counters — zero on a clean (fault-free)
    /// run, nonzero once the retry machinery had to act.
    pub fn recovery_total(&self) -> u64 {
        self.retransmits
            + self.checksum_rejects
            + self.reroutes
            + self.duplicates_suppressed
            + self.probes_sent
            + self.link_down_events
            + self.router_drops
    }
}

impl std::fmt::Debug for ShmemCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmemCtx")
            .field("my_pe", &self.my_pe())
            .field("num_pes", &self.num_pes())
            .finish()
    }
}
