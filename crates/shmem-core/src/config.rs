//! OpenSHMEM runtime configuration.

use std::time::Duration;

use ntb_net::NetConfig;
use ntb_sim::{TimeModel, TransferMode};

/// Which algorithm `shmem_barrier_all` runs.
///
/// The paper implements the two-round ring doorbell sweep (Fig. 6) and
/// notes that "the reduction of the latency overhead should be done in
/// future work"; [`BarrierAlgorithm::Dissemination`] is that future work:
/// the classic ⌈log₂N⌉-round dissemination barrier (Mellor-Crummey &
/// Scott), with the round signals carried as small puts through the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierAlgorithm {
    /// The paper's algorithm: a barrier-start sweep around the ring
    /// followed by a barrier-end sweep (2N doorbell hops).
    RingSweep,
    /// ⌈log₂N⌉ rounds of put-flag signalling to PE `(me + 2^k) mod N`.
    Dissemination,
}

/// What collectives do once the heartbeat failure detector has evicted a
/// PE from the ring membership.
///
/// With the detector disabled (the default [`HeartbeatConfig`]) the
/// membership never degrades and this knob is inert.
///
/// [`HeartbeatConfig`]: ntb_net::HeartbeatConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Refuse: collectives return
    /// [`ShmemError::PeFailed`](crate::error::ShmemError::PeFailed) while
    /// any PE is dead, keeping the SPMD contract explicit. The default.
    #[default]
    Fail,
    /// Continue over the live membership: barriers synchronize the
    /// survivors (a dissemination barrier over the live set) and data
    /// collectives skip dead destinations.
    Degrade,
}

/// Configuration of a [`ShmemWorld`](crate::runtime::ShmemWorld).
#[derive(Debug, Clone)]
pub struct ShmemConfig {
    /// Interconnect configuration (hosts, windows, timing model).
    pub net: NetConfig,
    /// Symmetric heap chunk size (the fixed on-demand allocation unit of
    /// paper Fig. 3; power of two).
    pub heap_chunk: u64,
    /// Data path used by puts/gets unless a call overrides it
    /// (the paper's DMA-vs-memcpy axis in Fig. 9).
    pub default_mode: TransferMode,
    /// `shmem_barrier_all` gives up after this long (a peer died).
    pub barrier_timeout: Duration,
    /// `shmem_wait_until` gives up after this long.
    pub wait_timeout: Duration,
    /// Barrier algorithm (default: the paper's ring sweep).
    pub barrier_algorithm: BarrierAlgorithm,
    /// Collective behaviour under a degraded membership (a PE confirmed
    /// dead by the heartbeat detector).
    pub degraded_policy: DegradedPolicy,
}

impl ShmemConfig {
    /// Start a [`ShmemConfigBuilder`] from the fast-simulation preset —
    /// the one-stop construction path for examples and applications:
    ///
    /// ```
    /// use shmem_core::prelude::*;
    /// let cfg = ShmemConfig::builder().hosts(3).coalescing(true).build();
    /// assert_eq!(cfg.hosts(), 3);
    /// ```
    pub fn builder() -> ShmemConfigBuilder {
        ShmemConfigBuilder::new()
    }

    /// Paper-scale timing (latencies comparable to the PEX testbed).
    pub fn paper() -> Self {
        ShmemConfig {
            net: NetConfig::paper(3),
            heap_chunk: 1 << 20,
            default_mode: TransferMode::Dma,
            barrier_timeout: Duration::from_secs(60),
            wait_timeout: Duration::from_secs(60),
            barrier_algorithm: BarrierAlgorithm::RingSweep,
            degraded_policy: DegradedPolicy::Fail,
        }
    }

    /// Fast functional simulation (no injected delays): the configuration
    /// tests and examples use.
    pub fn fast_sim() -> Self {
        ShmemConfig {
            net: NetConfig::fast(3),
            // Generous: `cargo test` oversubscribes small machines with
            // several concurrent worlds, and a timeout here aborts the
            // whole run rather than just slowing it.
            barrier_timeout: Duration::from_secs(60),
            wait_timeout: Duration::from_secs(60),
            ..Self::paper()
        }
    }

    /// Set the number of PEs (one per host in the switchless ring).
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.net.hosts = hosts;
        self
    }

    /// Set the default transfer mode.
    pub fn with_mode(mut self, mode: TransferMode) -> Self {
        self.default_mode = mode;
        self
    }

    /// Replace the timing model.
    pub fn with_model(mut self, model: TimeModel) -> Self {
        self.net.model = model;
        self
    }

    /// Scale all injected delays (1.0 = paper scale, 0.0 = none).
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.net.model = TimeModel::scaled(scale);
        self
    }

    /// Set the symmetric heap chunk size.
    pub fn with_heap_chunk(mut self, chunk: u64) -> Self {
        self.heap_chunk = chunk;
        self
    }

    /// Select the barrier algorithm.
    pub fn with_barrier_algorithm(mut self, alg: BarrierAlgorithm) -> Self {
        self.barrier_algorithm = alg;
        self
    }

    /// Select the degraded-membership collective policy.
    pub fn with_degraded_policy(mut self, policy: DegradedPolicy) -> Self {
        self.degraded_policy = policy;
        self
    }

    /// Enable/tune the heartbeat failure detector (whole-PE death
    /// detection through neighbour scratchpads).
    pub fn with_heartbeat(mut self, heartbeat: ntb_net::HeartbeatConfig) -> Self {
        self.net.heartbeat = heartbeat;
        self
    }

    /// Select the interconnect topology (the paper's switchless ring, or
    /// the switch-emulating full mesh baseline).
    pub fn with_topology(mut self, topology: ntb_net::Topology) -> Self {
        self.net.topology = topology;
        self
    }

    /// Override the lossy-link retry/recovery policy (acknowledgement
    /// timeouts, retransmission budget, backoff, link probing).
    pub fn with_retry(mut self, retry: ntb_net::RetryPolicy) -> Self {
        self.net.retry = retry;
        self
    }

    /// Install a fault-injection plan on every interconnect link (chaos
    /// and recovery testing; the default plan is inert).
    pub fn with_faults(mut self, faults: ntb_sim::FaultPlan) -> Self {
        self.net.faults = faults;
        self
    }

    /// Override the overload-survival tuning (queue bounds, flow-control
    /// credit window, retry budget). The defaults never shed on a clean
    /// functional run; overload benches and chaos cells shrink them.
    pub fn with_overload(mut self, overload: ntb_net::OverloadConfig) -> Self {
        self.net.overload = overload;
        self
    }

    /// Enable or disable the transmit ring's doorbell coalescing.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.net.coalesce = on;
        self
    }

    /// Override the transmit-ring geometry (slots per link, batch cap).
    pub fn with_tx_ring(mut self, slots: u32, batch: u32) -> Self {
        self.net.tx_slots = slots;
        self.net.coalesce_batch = batch;
        self
    }

    /// Override the ring-path DMA/PIO crossover threshold in bytes.
    pub fn with_pio_crossover(mut self, bytes: u64) -> Self {
        self.net.pio_crossover = bytes;
        self
    }

    /// Tune the pipelined get path: the sub-request tile size in bytes
    /// and how many tiles stay in flight per get (`1` = stop-and-wait).
    pub fn with_get_pipeline(mut self, req_chunk: u64, window: usize) -> Self {
        self.net = self.net.with_get_pipeline(req_chunk, window);
        self
    }

    /// Number of PEs.
    pub fn hosts(&self) -> usize {
        self.net.hosts
    }

    /// Validate invariants (delegates to the net config and checks the
    /// heap chunk).
    pub fn validate(&self) {
        self.net.validate();
        assert!(
            self.heap_chunk.is_power_of_two() && self.heap_chunk >= 4096,
            "heap chunk must be a power of two >= 4096"
        );
    }
}

impl Default for ShmemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Step-by-step construction of a [`ShmemConfig`], replacing positional
/// struct literals. Starts from [`ShmemConfig::fast_sim`] (no injected
/// delays); select [`paper_timing`](Self::paper_timing) for
/// testbed-scale latencies. `build()` validates the result.
#[derive(Debug, Clone)]
pub struct ShmemConfigBuilder {
    cfg: ShmemConfig,
}

impl ShmemConfigBuilder {
    /// A builder seeded with the fast-simulation preset.
    pub fn new() -> Self {
        ShmemConfigBuilder { cfg: ShmemConfig::fast_sim() }
    }

    /// Number of PEs (one per host in the switchless ring).
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.cfg.net.hosts = hosts;
        self
    }

    /// Swap the timing preset to paper scale (PEX-testbed latencies).
    pub fn paper_timing(mut self) -> Self {
        self.cfg.net.model = TimeModel::paper();
        self
    }

    /// Scale all injected delays (1.0 = paper scale, 0.0 = none).
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.cfg.net.model = TimeModel::scaled(scale);
        self
    }

    /// Default data path for puts/gets.
    pub fn default_mode(mut self, mode: TransferMode) -> Self {
        self.cfg.default_mode = mode;
        self
    }

    /// Symmetric heap chunk size (power of two ≥ 4096).
    pub fn heap_chunk(mut self, chunk: u64) -> Self {
        self.cfg.heap_chunk = chunk;
        self
    }

    /// Barrier algorithm (ring sweep or dissemination).
    pub fn barrier_algorithm(mut self, alg: BarrierAlgorithm) -> Self {
        self.cfg.barrier_algorithm = alg;
        self
    }

    /// Degraded-membership collective policy (fail fast or continue over
    /// the live PEs).
    pub fn degraded_policy(mut self, policy: DegradedPolicy) -> Self {
        self.cfg.degraded_policy = policy;
        self
    }

    /// Heartbeat failure-detector tuning (disabled by default).
    pub fn heartbeat(mut self, heartbeat: ntb_net::HeartbeatConfig) -> Self {
        self.cfg.net.heartbeat = heartbeat;
        self
    }

    /// `shmem_barrier_all` timeout.
    pub fn barrier_timeout(mut self, t: Duration) -> Self {
        self.cfg.barrier_timeout = t;
        self
    }

    /// `shmem_wait_until` timeout.
    pub fn wait_timeout(mut self, t: Duration) -> Self {
        self.cfg.wait_timeout = t;
        self
    }

    /// Interconnect topology: `Topology::ring(n)`, `Topology::torus(rows,
    /// cols)` or `Topology::clique(n)`. Non-ring shapes always run the
    /// dissemination barrier (the ring sweep needs ring-direction
    /// adapters).
    ///
    /// ```
    /// use shmem_core::prelude::*;
    /// let cfg = ShmemConfig::builder().hosts(16).topology(Topology::torus(4, 4)).build();
    /// assert_eq!(cfg.hosts(), 16);
    /// ```
    pub fn topology(mut self, topology: ntb_net::Topology) -> Self {
        self.cfg.net.topology = topology;
        self
    }

    /// Lossy-link retry/recovery policy.
    pub fn retry(mut self, retry: ntb_net::RetryPolicy) -> Self {
        self.cfg.net.retry = retry;
        self
    }

    /// Fault-injection plan for every interconnect link.
    pub fn faults(mut self, faults: ntb_sim::FaultPlan) -> Self {
        self.cfg.net.faults = faults;
        self
    }

    /// Enable or disable transmit-ring doorbell coalescing.
    pub fn coalescing(mut self, on: bool) -> Self {
        self.cfg.net.coalesce = on;
        self
    }

    /// Transmit-ring geometry: slots per link and the batch cap that
    /// forces a flush.
    pub fn tx_ring(mut self, slots: u32, batch: u32) -> Self {
        self.cfg.net.tx_slots = slots;
        self.cfg.net.coalesce_batch = batch;
        self
    }

    /// Ring-path DMA/PIO crossover threshold in bytes.
    pub fn pio_crossover(mut self, bytes: u64) -> Self {
        self.cfg.net.pio_crossover = bytes;
        self
    }

    /// Pipelined get tuning: sub-request tile size in bytes and the
    /// in-flight window per get (`1` = stop-and-wait).
    pub fn get_pipeline(mut self, req_chunk: u64, window: usize) -> Self {
        self.cfg.net = self.cfg.net.with_get_pipeline(req_chunk, window);
        self
    }

    /// Finish: validate and return the configuration.
    pub fn build(self) -> ShmemConfig {
        self.cfg.validate();
        self.cfg
    }
}

impl Default for ShmemConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ShmemConfig::paper().validate();
        ShmemConfig::fast_sim().validate();
        ShmemConfig::fast_sim().with_hosts(6).with_mode(TransferMode::Memcpy).validate();
    }

    #[test]
    fn fast_sim_disables_delays() {
        assert!(!ShmemConfig::fast_sim().net.model.enabled());
        assert!(ShmemConfig::paper().net.model.enabled());
    }

    #[test]
    #[should_panic(expected = "heap chunk")]
    fn bad_heap_chunk_rejected() {
        ShmemConfig::fast_sim().with_heap_chunk(1000).validate();
    }

    #[test]
    fn builders_chain() {
        let c = ShmemConfig::fast_sim().with_hosts(5).with_heap_chunk(8192);
        assert_eq!(c.hosts(), 5);
        assert_eq!(c.heap_chunk, 8192);
    }

    #[test]
    fn builder_covers_batching_knobs() {
        let c = ShmemConfig::builder()
            .hosts(5)
            .default_mode(TransferMode::Memcpy)
            .heap_chunk(8192)
            .coalescing(true)
            .tx_ring(4, 2)
            .pio_crossover(512)
            .build();
        assert_eq!(c.hosts(), 5);
        assert_eq!(c.default_mode, TransferMode::Memcpy);
        assert!(c.net.coalesce);
        assert_eq!(c.net.tx_slots, 4);
        assert_eq!(c.net.batch_cap(), 2);
        assert_eq!(c.net.pio_crossover, 512);
    }

    #[test]
    fn builder_covers_failure_knobs() {
        let c = ShmemConfig::builder()
            .hosts(5)
            .heartbeat(ntb_net::HeartbeatConfig::fast())
            .degraded_policy(DegradedPolicy::Degrade)
            .build();
        assert!(c.net.heartbeat.enabled);
        assert_eq!(c.degraded_policy, DegradedPolicy::Degrade);
        assert_eq!(ShmemConfig::fast_sim().degraded_policy, DegradedPolicy::Fail);
    }

    #[test]
    fn builder_covers_get_pipeline_knobs() {
        let c = ShmemConfig::builder().hosts(2).get_pipeline(64 << 10, 8).build();
        assert_eq!(c.net.get_req_chunk, 64 << 10);
        assert_eq!(c.net.get_window, 8);
        let c = ShmemConfig::fast_sim().with_get_pipeline(32 << 10, 1);
        assert_eq!(c.net.get_req_chunk, 32 << 10);
        assert_eq!(c.net.get_window, 1);
        c.validate();
    }

    #[test]
    fn builder_can_disable_coalescing() {
        let c = ShmemConfig::builder().hosts(2).coalescing(false).build();
        assert!(!c.net.coalesce);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "heap chunk")]
    fn builder_validates_on_build() {
        ShmemConfig::builder().heap_chunk(1000).build();
    }
}
