//! The SPMD runtime: `shmem_init` … `shmem_finalize` as a scoped world.
//!
//! [`ShmemWorld::run`] performs everything the paper's `shmem_init` does —
//! builds the switchless ring (BAR setup, id exchange, LUT programming),
//! allocates the bypass buffers, starts the service threads — then runs
//! one OS thread per PE over the user's closure and tears the world down
//! (`shmem_finalize`) when every PE returns.

use std::sync::Arc;

use ntb_net::RingNetwork;

use crate::config::ShmemConfig;
use crate::ctx::ShmemCtx;
use crate::error::Result;

/// Entry point of the OpenSHMEM model.
pub struct ShmemWorld;

impl ShmemWorld {
    /// Run `f` as an SPMD program on `cfg.hosts()` PEs (one thread per
    /// simulated host). Returns each PE's result, indexed by PE number.
    ///
    /// If any PE panics, the panic is re-raised here after the world is
    /// torn down. PEs blocked on a barrier against a dead peer fail with
    /// [`ShmemError::PeFailed`](crate::error::ShmemError) once the
    /// heartbeat detector confirms the death (or, with the detector
    /// disabled, with
    /// [`ShmemError::BarrierTimeout`](crate::error::ShmemError) after the
    /// configured timeout, naming the stalled phase and neighbour).
    pub fn run<F, T>(cfg: ShmemConfig, f: F) -> Result<Vec<T>>
    where
        F: Fn(&ShmemCtx) -> T + Send + Sync,
        T: Send,
    {
        cfg.validate();
        let net = RingNetwork::build(cfg.net.clone())?;
        let ctxs: Vec<ShmemCtx> = (0..cfg.hosts())
            .map(|i| ShmemCtx::new(Arc::clone(net.node(i)), cfg.clone()))
            .collect::<Result<_>>()?;

        let results: Vec<std::thread::Result<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = ctxs
                .iter()
                .map(|ctx| {
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("shmem-pe{}", ctx.my_pe()))
                        .spawn_scoped(s, move || f(ctx))
                        // lint: unwrap-ok(spawn fails only on resource exhaustion at bring-up)
                        .expect("spawn PE thread")
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        for ctx in &ctxs {
            ctx.finalize();
        }
        net.shutdown();

        let mut out = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(out)
    }

    /// Run and keep only PE 0's result (common for programs whose other
    /// PEs return `()`-like values).
    pub fn run_root<F, T>(cfg: ShmemConfig, f: F) -> Result<T>
    where
        F: Fn(&ShmemCtx) -> T + Send + Sync,
        T: Send,
    {
        Ok(Self::run(cfg, f)?.remove(0))
    }
}
