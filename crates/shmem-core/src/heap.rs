//! The symmetric heap (paper §III-B2, Fig. 3).
//!
//! OpenSHMEM symmetric data objects "have the same name, size, type, and
//! relative address on all PEs". The paper implements this as a heap of
//! fixed-size chunks allocated on demand and *virtually concatenated*: the
//! actual memory is scattered, but the address space the application (and
//! the remote side) sees is one contiguous range of flat offsets. Remote
//! PEs address symmetric objects purely by flat offset (Fig. 3(b)).
//!
//! Because every PE executes the same allocation sequence (OpenSHMEM is
//! SPMD and `shmem_malloc` is collective), the deterministic first-fit
//! allocator below yields identical offsets on every PE — the invariant
//! the property tests pin down.
//!
//! The heap is also the interconnect's [`DeliveryTarget`]: arriving puts,
//! get reads and atomics all resolve against it, and every remote mutation
//! bumps a change counter that `shmem_wait_until` sleeps on.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ntb_net::{AmoOp, DeliveryTarget};
use ntb_sim::{HostMemory, Region};
use parking_lot::{Condvar, Mutex};

use crate::error::{Result, ShmemError};
use crate::symmetric::SymAddr;

/// Allocation alignment (and minimum block size).
pub const SYMMETRIC_ALIGN: u64 = 16;

#[derive(Debug)]
struct HeapInner {
    /// The on-demand chunks, each exactly `chunk_size` long, forming the
    /// virtually contiguous flat space.
    segments: Vec<Region>,
    /// Sorted, coalesced free ranges `(offset, len)` over the flat space.
    free: Vec<(u64, u64)>,
    /// Live allocations: start offset -> (aligned) length.
    live: HashMap<u64, u64>,
}

impl HeapInner {
    fn capacity(&self, chunk_size: u64) -> u64 {
        self.segments.len() as u64 * chunk_size
    }
}

/// One PE's symmetric heap.
pub struct SymmetricHeap {
    mem: Arc<HostMemory>,
    chunk_size: u64,
    inner: Mutex<HeapInner>,
    /// Serializes all atomic memory operations executed at this PE
    /// (from remote requests and from local calls).
    amo_lock: Mutex<()>,
    /// Change notification for `wait_until`.
    version: Mutex<u64>,
    version_cond: Condvar,
}

impl SymmetricHeap {
    /// Create an empty heap that grows in `chunk_size` chunks charged to
    /// `mem`.
    pub fn new(mem: Arc<HostMemory>, chunk_size: u64) -> Arc<Self> {
        assert!(
            chunk_size >= SYMMETRIC_ALIGN && chunk_size.is_power_of_two(),
            "chunk size must be a power of two >= {SYMMETRIC_ALIGN}"
        );
        Arc::new(SymmetricHeap {
            mem,
            chunk_size,
            inner: Mutex::new(HeapInner {
                segments: Vec::new(),
                free: Vec::new(),
                live: HashMap::new(),
            }),
            amo_lock: Mutex::new(()),
            version: Mutex::new(0),
            version_cond: Condvar::new(),
        })
    }

    /// Heap chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Number of chunks currently backing the heap.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Total flat capacity (bytes).
    pub fn capacity(&self) -> u64 {
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_HEAP);
        let inner = self.inner.lock();
        inner.capacity(self.chunk_size)
    }

    /// Bytes currently inside live allocations.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().live.values().sum()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.inner.lock().live.len()
    }

    fn round_up(size: u64) -> u64 {
        size.div_ceil(SYMMETRIC_ALIGN) * SYMMETRIC_ALIGN
    }

    /// Allocate `size` bytes of symmetric memory. **Not** collective by
    /// itself — `ShmemCtx::malloc` adds the barrier the spec requires.
    /// A zero-size request returns a zero-length address.
    pub fn malloc(&self, size: u64) -> Result<SymAddr> {
        self.malloc_aligned(size, SYMMETRIC_ALIGN)
    }

    /// `shmem_align`: allocate `size` bytes whose flat offset is a
    /// multiple of `align` (a power of two). Deterministic first fit, so
    /// replicas still agree on offsets.
    pub fn malloc_aligned(&self, size: u64, align: u64) -> Result<SymAddr> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(SYMMETRIC_ALIGN);
        if size == 0 {
            return Ok(SymAddr { offset: 0, len: 0 });
        }
        let need = Self::round_up(size);
        let fits = |off: u64, len: u64| -> Option<u64> {
            let aligned = off.next_multiple_of(align);
            (aligned + need <= off + len).then_some(aligned)
        };
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_HEAP);
        let mut inner = self.inner.lock();
        // First fit over the sorted free list (deterministic: identical
        // call sequences give identical offsets on every PE).
        let found = inner
            .free
            .iter()
            .enumerate()
            .find_map(|(i, &(off, len))| fits(off, len).map(|aligned| (i, aligned)));
        let (pos, aligned) = match found {
            Some(hit) => hit,
            None => {
                // Grow: extend the flat space with exactly enough fresh
                // chunks for the aligned allocation to fit at the end of
                // the (possibly free) tail, merging the new space into a
                // trailing free range.
                let cap = inner.capacity(self.chunk_size);
                let (tail_start, _tail_free) = match inner.free.last() {
                    Some(&(off, len)) if off + len == cap => (off, len),
                    _ => (cap, 0),
                };
                let aligned_start = tail_start.next_multiple_of(align);
                let extra = (aligned_start + need).saturating_sub(cap);
                let chunks = extra.div_ceil(self.chunk_size);
                for _ in 0..chunks {
                    let region = self
                        .mem
                        .alloc_region(self.chunk_size)
                        .map_err(|_| ShmemError::OutOfSymmetricMemory { requested: size })?;
                    inner.segments.push(region);
                }
                let grown = chunks * self.chunk_size;
                match inner.free.last_mut() {
                    Some(last) if last.0 + last.1 == cap => last.1 += grown,
                    _ => inner.free.push((cap, grown)),
                }
                let pos = inner.free.len() - 1;
                let (off, len) = inner.free[pos];
                let aligned =
                    fits(off, len).ok_or(ShmemError::OutOfSymmetricMemory { requested: size })?;
                (pos, aligned)
            }
        };
        let (off, len) = inner.free[pos];
        // Carve [aligned, aligned+need) out of [off, off+len): up to two
        // remainders stay free (leading alignment pad, trailing tail).
        inner.free.remove(pos);
        let mut insert_at = pos;
        if aligned > off {
            inner.free.insert(insert_at, (off, aligned - off));
            insert_at += 1;
        }
        if aligned + need < off + len {
            inner.free.insert(insert_at, (aligned + need, off + len - (aligned + need)));
        }
        inner.live.insert(aligned, need);
        Ok(SymAddr { offset: aligned, len: need })
    }

    /// Release an allocation. **Not** collective by itself (see
    /// `ShmemCtx::free`). Freeing a zero-length address is a no-op.
    pub fn free(&self, addr: SymAddr) -> Result<()> {
        if addr.len == 0 {
            return Ok(());
        }
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_HEAP);
        let mut inner = self.inner.lock();
        let len = inner
            .live
            .remove(&addr.offset)
            .ok_or(ShmemError::InvalidFree { offset: addr.offset })?;
        // Insert sorted and coalesce with both neighbours.
        let idx = inner.free.partition_point(|&(off, _)| off < addr.offset);
        inner.free.insert(idx, (addr.offset, len));
        // Coalesce with successor first (indices stay valid), then
        // predecessor.
        if idx + 1 < inner.free.len()
            && inner.free[idx].0 + inner.free[idx].1 == inner.free[idx + 1].0
        {
            inner.free[idx].1 += inner.free[idx + 1].1;
            inner.free.remove(idx + 1);
        }
        if idx > 0 && inner.free[idx - 1].0 + inner.free[idx - 1].1 == inner.free[idx].0 {
            inner.free[idx - 1].1 += inner.free[idx].1;
            inner.free.remove(idx);
        }
        Ok(())
    }

    fn check_range(&self, inner: &HeapInner, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > inner.capacity(self.chunk_size)) {
            return Err(ShmemError::SymmetricBounds { offset, len });
        }
        Ok(())
    }

    /// Write `data` at flat offset `offset`, crossing chunk boundaries as
    /// needed (the "scattered but virtually continuative" copy of Fig. 3).
    pub fn write_flat(&self, offset: u64, data: &[u8]) -> Result<()> {
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_HEAP);
        let inner = self.inner.lock();
        self.check_range(&inner, offset, data.len() as u64)?;
        let mut pos = 0usize;
        while pos < data.len() {
            let flat = offset + pos as u64;
            let seg = (flat / self.chunk_size) as usize;
            let within = flat % self.chunk_size;
            let n = ((self.chunk_size - within) as usize).min(data.len() - pos);
            inner.segments[seg].write(within, &data[pos..pos + n]).map_err(ShmemError::Net)?;
            pos += n;
        }
        Ok(())
    }

    /// Read `out.len()` bytes from flat offset `offset`.
    pub fn read_flat(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_HEAP);
        let inner = self.inner.lock();
        self.check_range(&inner, offset, out.len() as u64)?;
        let mut pos = 0usize;
        while pos < out.len() {
            let flat = offset + pos as u64;
            let seg = (flat / self.chunk_size) as usize;
            let within = flat % self.chunk_size;
            let n = ((self.chunk_size - within) as usize).min(out.len() - pos);
            inner.segments[seg].read(within, &mut out[pos..pos + n]).map_err(ShmemError::Net)?;
            pos += n;
        }
        Ok(())
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_flat_vec(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len as usize];
        self.read_flat(offset, &mut v)?;
        Ok(v)
    }

    /// Fill `len` bytes at flat offset `offset` with `byte` (used by
    /// `shmem_calloc`: recycled heap memory is *not* zeroed by `malloc`,
    /// matching the OpenSHMEM spec).
    pub fn fill_flat(&self, offset: u64, len: u64, byte: u8) -> Result<()> {
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_HEAP);
        let inner = self.inner.lock();
        self.check_range(&inner, offset, len)?;
        let mut pos = 0u64;
        while pos < len {
            let flat = offset + pos;
            let seg = (flat / self.chunk_size) as usize;
            let within = flat % self.chunk_size;
            let n = (self.chunk_size - within).min(len - pos);
            inner.segments[seg].fill(within, n, byte).map_err(ShmemError::Net)?;
            pos += n;
        }
        Ok(())
    }

    /// Execute an atomic at flat offset `offset` on `width` bytes,
    /// serialized with every other atomic at this PE. Returns the old
    /// value zero-extended to 64 bits.
    pub fn local_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> Result<u64> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "AMO width must be 1/2/4/8");
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_AMO);
        let _guard = self.amo_lock.lock();
        let mut buf = [0u8; 8];
        self.read_flat(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        let new = op.apply(old, operand, compare);
        self.write_flat(offset, &new.to_le_bytes()[..width])?;
        self.bump_version();
        Ok(old)
    }

    /// Signal `wait_until` sleepers that symmetric memory changed.
    pub fn bump_version(&self) {
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_VERSION);
        let mut v = self.version.lock();
        *v += 1;
        self.version_cond.notify_all();
    }

    /// Current change-counter value.
    pub fn version(&self) -> u64 {
        *self.version.lock()
    }

    /// Block until the change counter moves past `seen` (or `timeout`
    /// passes). Returns the new counter value.
    pub fn wait_change(&self, seen: u64, timeout: Duration) -> u64 {
        ntb_net::lockdep_track!(&ntb_net::lockdep::SHMEM_VERSION);
        let mut v = self.version.lock();
        if *v == seen {
            // DEADLINE-CLIPPED: forwards the caller's timeout — every
            // caller clips it to its own op deadline before calling.
            let _ = self.version_cond.wait_for(&mut v, timeout);
        }
        *v
    }
}

impl std::fmt::Debug for SymmetricHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymmetricHeap")
            .field("chunk_size", &self.chunk_size)
            .field("segments", &self.segment_count())
            .field("live", &self.live_allocations())
            .finish()
    }
}

impl DeliveryTarget for SymmetricHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> ntb_sim::Result<()> {
        self.write_flat(offset, data).map_err(shmem_to_ntb)?;
        self.bump_version();
        Ok(())
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> ntb_sim::Result<()> {
        self.read_flat(offset, out).map_err(shmem_to_ntb)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> ntb_sim::Result<u64> {
        self.local_atomic(op, offset, width, operand, compare).map_err(shmem_to_ntb)
    }
}

impl ntb_sim::ReadAperture for SymmetricHeap {
    /// Serve a peer's aperture read straight from the flat space: the
    /// peer's CPU pulls the bytes through the mapped window, no service
    /// thread involved. An offset outside the currently-grown heap is
    /// `Ok(false)` — not an error, the reader falls back to the get
    /// protocol (whose responder reports the authoritative bounds).
    fn read(&self, offset: u64, buf: &mut [u8]) -> ntb_sim::Result<bool> {
        match self.read_flat(offset, buf) {
            Ok(()) => Ok(true),
            Err(ShmemError::SymmetricBounds { .. }) => Ok(false),
            Err(e) => Err(shmem_to_ntb(e)),
        }
    }
}

/// Delivery errors must cross the `ntb-net` boundary as `NtbError`.
fn shmem_to_ntb(e: ShmemError) -> ntb_sim::NtbError {
    match e {
        ShmemError::Net(inner) => inner,
        ShmemError::SymmetricBounds { .. } => {
            ntb_sim::NtbError::BadDescriptor { reason: "delivery outside the symmetric heap" }
        }
        _ => ntb_sim::NtbError::BadDescriptor { reason: "symmetric heap rejected delivery" },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Arc<SymmetricHeap> {
        SymmetricHeap::new(HostMemory::new(0, 256 << 20), 4096)
    }

    #[test]
    fn malloc_aligns_and_packs() {
        let h = heap();
        let a = h.malloc(10).unwrap();
        let b = h.malloc(20).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(a.len, 16);
        assert_eq!(b.offset, 16);
        assert_eq!(b.len, 32);
        assert_eq!(h.live_allocations(), 2);
    }

    #[test]
    fn zero_size_malloc() {
        let h = heap();
        let a = h.malloc(0).unwrap();
        assert_eq!(a.len, 0);
        h.free(a).unwrap();
        assert_eq!(h.segment_count(), 0, "no chunk needed");
    }

    #[test]
    fn grows_by_chunks() {
        let h = heap();
        let _a = h.malloc(4096).unwrap();
        assert_eq!(h.segment_count(), 1);
        let _b = h.malloc(10_000).unwrap();
        // 10_000 doesn't fit the remaining 0 bytes: needs 3 more chunks
        // (10_000+? -> rounded 10000->10000? aligned to 10000+? )
        assert!(h.segment_count() >= 3);
        assert_eq!(h.capacity(), h.segment_count() as u64 * 4096);
    }

    #[test]
    fn allocation_spans_chunk_boundary() {
        let h = heap();
        let a = h.malloc(3 * 4096 + 100).unwrap();
        let payload: Vec<u8> = (0..(3 * 4096 + 100)).map(|i| (i % 251) as u8).collect();
        h.write_flat(a.offset, &payload).unwrap();
        assert_eq!(h.read_flat_vec(a.offset, payload.len() as u64).unwrap(), payload);
    }

    #[test]
    fn free_reuses_space_first_fit() {
        let h = heap();
        let a = h.malloc(64).unwrap();
        let _b = h.malloc(64).unwrap();
        h.free(a).unwrap();
        let c = h.malloc(32).unwrap();
        assert_eq!(c.offset, 0, "first fit reuses the freed hole");
        let d = h.malloc(32).unwrap();
        assert_eq!(d.offset, 32, "remainder of the hole");
    }

    #[test]
    fn free_coalesces_neighbors() {
        let h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        let c = h.malloc(64).unwrap();
        let _d = h.malloc(64).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        h.free(b).unwrap(); // merges a+b+c into one 192-byte hole
        let e = h.malloc(192).unwrap();
        assert_eq!(e.offset, 0, "coalesced hole satisfies a large request");
    }

    #[test]
    fn double_free_detected() {
        let h = heap();
        let a = h.malloc(64).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a).unwrap_err(), ShmemError::InvalidFree { offset: 0 });
    }

    #[test]
    fn free_of_interior_pointer_detected() {
        let h = heap();
        let _a = h.malloc(64).unwrap();
        let bogus = SymAddr { offset: 8, len: 8 };
        assert!(matches!(h.free(bogus), Err(ShmemError::InvalidFree { .. })));
    }

    #[test]
    fn out_of_bounds_flat_access() {
        let h = heap();
        let _a = h.malloc(100).unwrap();
        assert!(h.write_flat(4090, &[0u8; 100]).is_err());
        let mut buf = [0u8; 16];
        assert!(h.read_flat(1 << 30, &mut buf).is_err());
    }

    #[test]
    fn identical_call_sequences_identical_offsets() {
        // The symmetric invariant: two independent heaps replaying the
        // same malloc/free trace produce the same offsets.
        let h1 = heap();
        let h2 = heap();
        let script: Vec<u64> = vec![10, 200, 4096, 33, 7, 1024];
        let a1: Vec<_> = script.iter().map(|&s| h1.malloc(s).unwrap()).collect();
        let a2: Vec<_> = script.iter().map(|&s| h2.malloc(s).unwrap()).collect();
        assert_eq!(a1, a2);
        h1.free(a1[2]).unwrap();
        h2.free(a2[2]).unwrap();
        assert_eq!(h1.malloc(100).unwrap(), h2.malloc(100).unwrap());
    }

    #[test]
    fn aligned_malloc_honors_alignment() {
        let h = heap();
        let _pad = h.malloc(24).unwrap(); // occupy [0, 32)
        let a = h.malloc_aligned(100, 256).unwrap();
        assert_eq!(a.offset % 256, 0);
        assert!(a.offset >= 32);
        // The alignment pad stays allocatable.
        let b = h.malloc(16).unwrap();
        assert!(b.offset < a.offset, "pad hole reused: {b:?}");
    }

    #[test]
    fn aligned_malloc_deterministic_across_replicas() {
        let h1 = heap();
        let h2 = heap();
        for (size, align) in [(10, 16), (100, 512), (5000, 64), (7, 2048)] {
            assert_eq!(
                h1.malloc_aligned(size, align).unwrap(),
                h2.malloc_aligned(size, align).unwrap()
            );
        }
    }

    #[test]
    fn aligned_malloc_grows_with_slack() {
        let h = SymmetricHeap::new(HostMemory::new(0, 256 << 20), 4096);
        // Force growth where the aligned start is beyond the fresh chunk
        // boundary remainder.
        let _a = h.malloc(4000).unwrap();
        let b = h.malloc_aligned(8192, 8192).unwrap();
        assert_eq!(b.offset % 8192, 0);
        let payload = vec![0xC3u8; 8192];
        h.write_flat(b.offset, &payload).unwrap();
        assert_eq!(h.read_flat_vec(b.offset, 8192).unwrap(), payload);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let h = heap();
        let _ = h.malloc_aligned(8, 48);
    }

    #[test]
    fn arena_exhaustion_is_typed() {
        let h = SymmetricHeap::new(HostMemory::new(0, 8192), 4096);
        let _a = h.malloc(8192).unwrap();
        assert_eq!(h.malloc(1).unwrap_err(), ShmemError::OutOfSymmetricMemory { requested: 1 });
    }

    #[test]
    fn local_atomics() {
        let h = heap();
        let a = h.malloc(8).unwrap();
        let old = h.local_atomic(AmoOp::FetchAdd, a.offset, 8, 5, 0).unwrap();
        assert_eq!(old, 0);
        let old = h.local_atomic(AmoOp::FetchAdd, a.offset, 8, 3, 0).unwrap();
        assert_eq!(old, 5);
        assert_eq!(h.read_flat_vec(a.offset, 8).unwrap(), 8u64.to_le_bytes());
    }

    #[test]
    fn atomics_are_serialized_across_threads() {
        let h = heap();
        let a = h.malloc(8).unwrap();
        let mut handles = vec![];
        for _ in 0..8 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    h.local_atomic(AmoOp::FetchAdd, a.offset, 8, 1, 0).unwrap();
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        let mut buf = [0u8; 8];
        h.read_flat(a.offset, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 4000);
    }

    #[test]
    fn version_bumps_and_waits() {
        let h = heap();
        let v0 = h.version();
        h.bump_version();
        assert_eq!(h.version(), v0 + 1);
        // wait_change returns immediately when already moved.
        assert_eq!(h.wait_change(v0, Duration::from_millis(1)), v0 + 1);
        // times out when nothing changes.
        let v1 = h.version();
        assert_eq!(h.wait_change(v1, Duration::from_millis(5)), v1);
    }

    #[test]
    fn delivery_target_roundtrip() {
        let h = heap();
        let a = h.malloc(64).unwrap();
        let target: &dyn DeliveryTarget = &*h;
        target.deliver_put(a.offset, b"via the ring").unwrap();
        let mut out = vec![0u8; 12];
        target.read_for_get(a.offset, &mut out).unwrap();
        assert_eq!(out, b"via the ring");
        let old = target.deliver_atomic(AmoOp::Swap, a.offset + 16, 8, 9, 0).unwrap();
        assert_eq!(old, 0);
    }

    #[test]
    fn aperture_read_roundtrip_and_bounds() {
        let h = heap();
        let a = h.malloc(64).unwrap();
        h.write_flat(a.offset, b"window read").unwrap();
        let ap: &dyn ntb_sim::ReadAperture = &*h;
        let mut out = vec![0u8; 11];
        assert!(ap.read(a.offset, &mut out).unwrap());
        assert_eq!(out, b"window read");
        // Past the grown flat space: declined, not an error.
        assert!(!ap.read(1 << 40, &mut out).unwrap());
    }

    #[test]
    fn delivery_oob_becomes_ntb_error() {
        let h = heap();
        let target: &dyn DeliveryTarget = &*h;
        let err = target.deliver_put(1 << 40, &[1]).unwrap_err();
        assert!(matches!(err, ntb_sim::NtbError::BadDescriptor { .. }));
    }
}
