//! Distributed locking (`shmem_set_lock` / `shmem_test_lock` /
//! `shmem_clear_lock`).
//!
//! §II-B requires "distributed locking and synchronization primitives".
//! The lock variable is a symmetric `u64`; as in most OpenSHMEM
//! implementations the PE-0 copy is the authoritative one, and ownership
//! is taken with a remote compare-and-swap (0 → owner's PE id + 1)
//! executed atomically inside PE 0's service thread.

use crate::ctx::ShmemCtx;
use crate::error::{Result, ShmemError};
use crate::symmetric::TypedSym;

/// The PE whose copy of the lock word arbitrates ownership.
const LOCK_HOME: usize = 0;

impl ShmemCtx {
    /// Allocate a symmetric lock variable (collective), initialized
    /// unlocked on every PE before any PE can return and contend for it.
    pub fn lock_alloc(&self) -> Result<TypedSym<u64>> {
        // calloc barriers after zeroing: without that, a fast PE could
        // CAS against a peer's stale (recycled, non-zero) lock word.
        self.calloc_array(1)
    }

    fn lock_token(&self) -> u64 {
        self.my_pe() as u64 + 1
    }

    /// `shmem_set_lock`: acquire, spinning (with backoff) on the remote
    /// CAS until ownership is obtained.
    ///
    /// ```
    /// use shmem_core::{ShmemConfig, ShmemWorld};
    /// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(3), |ctx| {
    ///     let lock = ctx.lock_alloc().unwrap();
    ///     let total = ctx.calloc_array::<u64>(1).unwrap();
    ///     ctx.set_lock(&lock).unwrap();
    ///     // Unprotected read-modify-write, safe only inside the lock.
    ///     let v = ctx.get::<u64>(&total, 0, 0).unwrap();
    ///     ctx.put(&total, 0, v + 1, 0).unwrap();
    ///     ctx.quiet().unwrap();
    ///     ctx.clear_lock(&lock).unwrap();
    ///     ctx.barrier_all().unwrap();
    ///     if ctx.my_pe() == 0 {
    ///         assert_eq!(ctx.read_local::<u64>(&total, 0).unwrap(), 3);
    ///     }
    /// })
    /// .unwrap();
    /// ```
    pub fn set_lock(&self, lock: &TypedSym<u64>) -> Result<()> {
        let token = self.lock_token();
        let mut attempts = 0u32;
        // BOUNDED-BY: OpenSHMEM `shmem_set_lock` semantics — blocks until
        // the lock is acquired; a dead lock home fails the CAS typed.
        loop {
            let old = self.atomic_compare_swap(lock, 0, 0u64, token, LOCK_HOME)?;
            if old == 0 {
                return Ok(());
            }
            if old == token {
                return Err(ShmemError::Runtime("set_lock: lock already held by this PE"));
            }
            // Contended: back off politely. Spinning on remote CAS burns
            // both this core and the lock home's service thread; after a
            // few failed attempts, sleep (bounded exponential).
            attempts = attempts.saturating_add(1);
            if attempts <= 4 {
                std::thread::yield_now();
            } else {
                let us = 100u64 << attempts.min(13);
                // DEADLINE-CLIPPED: backoff quantum, capped at 5 ms — the
                // lock wait itself is unbounded by SHMEM semantics.
                std::thread::sleep(std::time::Duration::from_micros(us.min(5_000)));
            }
        }
    }

    /// `shmem_test_lock`: try to acquire; `true` if the lock was obtained.
    pub fn test_lock(&self, lock: &TypedSym<u64>) -> Result<bool> {
        let old = self.atomic_compare_swap(lock, 0, 0u64, self.lock_token(), LOCK_HOME)?;
        Ok(old == 0)
    }

    /// `shmem_clear_lock`: release. Completes this PE's outstanding puts
    /// first, so memory written inside the critical section is visible to
    /// the next owner.
    pub fn clear_lock(&self, lock: &TypedSym<u64>) -> Result<()> {
        self.quiet()?;
        let old = self.atomic_compare_swap(lock, 0, self.lock_token(), 0u64, LOCK_HOME)?;
        if old != self.lock_token() {
            return Err(ShmemError::Runtime("clear_lock: lock not held by this PE"));
        }
        Ok(())
    }
}
