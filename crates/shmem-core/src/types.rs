//! The OpenSHMEM scalar type family.
//!
//! OpenSHMEM defines its RMA and atomic routines per C type
//! (`shmem_long_put`, `shmem_int_fadd`, ...). In Rust the same surface is
//! one generic routine bounded by [`ShmemScalar`] (any RMA-able scalar) or
//! [`ShmemAtomicInt`] (the integer subset that supports remote atomics),
//! so `ctx.put_slice::<i64>` *is* `shmem_long_put`.

/// A fixed-width scalar that can live in symmetric memory and travel
/// through put/get. The encoding on the wire is little-endian, matching
/// the x86 hosts of the paper's testbed.
pub trait ShmemScalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Size in bytes.
    const WIDTH: usize;

    /// Serialize into exactly `Self::WIDTH` bytes.
    fn store_le(self, out: &mut [u8]);

    /// Deserialize from exactly `Self::WIDTH` bytes.
    fn load_le(bytes: &[u8]) -> Self;

    /// Serialize a slice into a byte vector.
    fn slice_to_bytes(data: &[Self]) -> Vec<u8> {
        let mut out = vec![0u8; data.len() * Self::WIDTH];
        for (i, v) in data.iter().enumerate() {
            v.store_le(&mut out[i * Self::WIDTH..(i + 1) * Self::WIDTH]);
        }
        out
    }

    /// Deserialize a byte slice (length must be a multiple of `WIDTH`).
    fn bytes_to_vec(bytes: &[u8]) -> Vec<Self> {
        assert_eq!(bytes.len() % Self::WIDTH, 0, "byte length not a multiple of element width");
        bytes.chunks_exact(Self::WIDTH).map(Self::load_le).collect()
    }
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl ShmemScalar for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();

            fn store_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn load_le(bytes: &[u8]) -> Self {
                // lint: unwrap-ok(callers pass WIDTH-sized slices by the ShmemScalar contract)
                <$t>::from_le_bytes(bytes.try_into().expect("width-checked slice"))
            }
        }
    )*};
}

impl_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// The integer subset usable with remote atomic operations
/// (`shmem_TYPE_atomic_*`). Values are widened to `u64` bit patterns on
/// the wire and truncated back at the requester.
pub trait ShmemAtomicInt: ShmemScalar {
    /// Widen to a 64-bit wire representation (zero-extended bit pattern).
    fn to_bits64(self) -> u64;

    /// Truncate a 64-bit wire value back.
    fn from_bits64(bits: u64) -> Self;
}

macro_rules! impl_atomic_int {
    ($($t:ty),*) => {$(
        impl ShmemAtomicInt for $t {
            fn to_bits64(self) -> u64 {
                // Cast through the unsigned twin so sign bits don't smear
                // beyond the type's own width.
                self as u64 & (u64::MAX >> (64 - 8 * std::mem::size_of::<$t>()))
            }

            fn from_bits64(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_atomic_int!(u8, u16, u32, u64, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_size_of() {
        assert_eq!(<u8 as ShmemScalar>::WIDTH, 1);
        assert_eq!(<i32 as ShmemScalar>::WIDTH, 4);
        assert_eq!(<f64 as ShmemScalar>::WIDTH, 8);
    }

    #[test]
    fn scalar_roundtrip_all_types() {
        macro_rules! check {
            ($t:ty, $v:expr) => {{
                let v: $t = $v;
                let mut buf = vec![0u8; <$t as ShmemScalar>::WIDTH];
                v.store_le(&mut buf);
                assert_eq!(<$t as ShmemScalar>::load_le(&buf), v);
            }};
        }
        check!(u8, 0xAB);
        check!(u16, 0xABCD);
        check!(u32, 0xDEAD_BEEF);
        check!(u64, u64::MAX - 1);
        check!(i8, -100);
        check!(i16, -30_000);
        check!(i32, i32::MIN);
        check!(i64, i64::MIN + 1);
        check!(f32, -1.25e9);
        check!(f64, std::f64::consts::PI);
    }

    #[test]
    fn slice_roundtrip() {
        let data: Vec<i32> = vec![-5, 0, 7, i32::MAX];
        let bytes = ShmemScalar::slice_to_bytes(&data);
        assert_eq!(bytes.len(), 16);
        assert_eq!(<i32 as ShmemScalar>::bytes_to_vec(&bytes), data);
    }

    #[test]
    #[should_panic(expected = "multiple of element width")]
    fn misaligned_bytes_panic() {
        let _ = <u32 as ShmemScalar>::bytes_to_vec(&[1, 2, 3]);
    }

    #[test]
    fn atomic_bits_zero_extend() {
        assert_eq!((-1i8).to_bits64(), 0xFF);
        assert_eq!((-1i32).to_bits64(), 0xFFFF_FFFF);
        assert_eq!(200u8.to_bits64(), 200);
        assert_eq!(u64::MAX.to_bits64(), u64::MAX);
    }

    #[test]
    fn atomic_bits_roundtrip_signed() {
        for v in [-128i8, -1, 0, 1, 127] {
            assert_eq!(i8::from_bits64(v.to_bits64()), v);
        }
        for v in [i64::MIN, -1, 0, 42, i64::MAX] {
            assert_eq!(i64::from_bits64(v.to_bits64()), v);
        }
    }

    #[test]
    fn float_slice_roundtrip() {
        let data = vec![0.5f64, -2.25, f64::INFINITY];
        let bytes = ShmemScalar::slice_to_bytes(&data);
        assert_eq!(<f64 as ShmemScalar>::bytes_to_vec(&bytes), data);
    }
}
