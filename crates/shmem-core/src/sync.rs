//! Point-to-point synchronization: `shmem_wait_until` / `shmem_test`.
//!
//! A PE blocks until *its own copy* of a symmetric variable satisfies a
//! comparison — the variable being updated remotely by another PE's put or
//! atomic. The wait sleeps on the heap's change counter, which every
//! remote delivery bumps, so no busy spinning is needed in the functional
//! configuration; under the paper-scale model the wake-up latency of the
//! service path is already charged by the delivery itself.

use std::time::{Duration, Instant};

use crate::ctx::ShmemCtx;
use crate::error::{Result, ShmemError};
use crate::symmetric::TypedSym;
use crate::types::ShmemScalar;

/// Comparison operators of `shmem_wait_until` (SHMEM_CMP_*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl CmpOp {
    /// Evaluate `value <op> target`.
    pub fn eval<T: PartialOrd>(self, value: &T, target: &T) -> bool {
        match self {
            CmpOp::Eq => value == target,
            CmpOp::Ne => value != target,
            CmpOp::Gt => value > target,
            CmpOp::Ge => value >= target,
            CmpOp::Lt => value < target,
            CmpOp::Le => value <= target,
        }
    }
}

/// One change-wait quantum: a short re-check tick, clipped to the time
/// remaining before `deadline` so a short `wait_timeout` is honored to the
/// millisecond rather than rounded up to the next tick.
fn wait_tick(deadline: Instant, now: Instant) -> Duration {
    deadline.saturating_duration_since(now).min(Duration::from_millis(50))
}

impl ShmemCtx {
    /// `shmem_TYPE_wait_until`: block until this PE's copy of
    /// `sym[index]` satisfies `cmp target`. Returns the satisfying value.
    pub fn wait_until<T: ShmemScalar + PartialOrd>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        cmp: CmpOp,
        target: T,
    ) -> Result<T> {
        let deadline = Instant::now() + self.cfg.wait_timeout;
        loop {
            let seen = self.heap.version();
            let v = self.read_local(sym, index)?;
            if cmp.eval(&v, &target) {
                return Ok(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ShmemError::WaitTimeout);
            }
            // Sleep until symmetric memory changes, clipped to both a short
            // re-check tick and the remaining deadline — an unclipped 50 ms
            // tick would overshoot a short `wait_timeout` by up to a full
            // tick before the timeout was noticed.
            self.heap.wait_change(seen, wait_tick(deadline, now));
        }
    }

    /// `shmem_TYPE_test`: non-blocking check of `sym[index] <cmp> target`.
    pub fn test<T: ShmemScalar + PartialOrd>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        cmp: CmpOp,
        target: T,
    ) -> Result<bool> {
        let v = self.read_local(sym, index)?;
        Ok(cmp.eval(&v, &target))
    }

    /// `shmem_TYPE_wait_until_any`: block until at least one of the given
    /// element indices satisfies `cmp target`; returns the position (into
    /// `indices`) of one satisfying element.
    pub fn wait_until_any<T: ShmemScalar + PartialOrd>(
        &self,
        sym: &TypedSym<T>,
        indices: &[usize],
        cmp: CmpOp,
        target: T,
    ) -> Result<usize> {
        if indices.is_empty() {
            return Err(ShmemError::Runtime("wait_until_any: empty index set"));
        }
        let deadline = Instant::now() + self.cfg.wait_timeout;
        loop {
            let seen = self.heap.version();
            for (pos, &idx) in indices.iter().enumerate() {
                let v = self.read_local(sym, idx)?;
                if cmp.eval(&v, &target) {
                    return Ok(pos);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ShmemError::WaitTimeout);
            }
            self.heap.wait_change(seen, wait_tick(deadline, now));
        }
    }

    /// `shmem_TYPE_wait_until_all`: block until *every* given element
    /// index satisfies `cmp target`; returns the satisfying values.
    pub fn wait_until_all<T: ShmemScalar + PartialOrd>(
        &self,
        sym: &TypedSym<T>,
        indices: &[usize],
        cmp: CmpOp,
        target: T,
    ) -> Result<Vec<T>> {
        let deadline = Instant::now() + self.cfg.wait_timeout;
        loop {
            let seen = self.heap.version();
            let values: Vec<T> =
                indices.iter().map(|&i| self.read_local(sym, i)).collect::<Result<_>>()?;
            if values.iter().all(|v| cmp.eval(v, &target)) {
                return Ok(values);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ShmemError::WaitTimeout);
            }
            self.heap.wait_change(seen, wait_tick(deadline, now));
        }
    }

    /// The `shmem_ptr` capability query: can symmetric memory of `pe` be
    /// accessed with plain loads and stores from this PE? On the
    /// switchless NTB interconnect only local memory qualifies (remote
    /// windows go through the protocol), exactly like `shmem_ptr`
    /// returning NULL for non-local PEs on the real prototype.
    pub fn is_locally_accessible(&self, pe: usize) -> bool {
        pe == self.my_pe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_eval() {
        assert!(CmpOp::Eq.eval(&5, &5));
        assert!(!CmpOp::Eq.eval(&5, &6));
        assert!(CmpOp::Ne.eval(&5, &6));
        assert!(CmpOp::Gt.eval(&7, &6));
        assert!(!CmpOp::Gt.eval(&6, &6));
        assert!(CmpOp::Ge.eval(&6, &6));
        assert!(CmpOp::Lt.eval(&5, &6));
        assert!(CmpOp::Le.eval(&6, &6));
        assert!(!CmpOp::Le.eval(&7, &6));
    }

    #[test]
    fn cmp_ops_on_floats() {
        assert!(CmpOp::Gt.eval(&1.5f64, &1.0));
        assert!(CmpOp::Ne.eval(&f64::NAN, &0.0));
        assert!(!CmpOp::Eq.eval(&f64::NAN, &f64::NAN));
    }
}
