//! Symmetric address handles.
//!
//! A [`SymAddr`] names a symmetric allocation by its flat offset in the
//! symmetric heap — the same offset on every PE (paper Fig. 3(b): "the
//! symmetric data objects of a remote PE can be accessed with the address
//! offset for that PE"). [`TypedSym`] adds an element type and count so
//! the RMA API can bounds-check accesses.

use std::marker::PhantomData;

use crate::error::{Result, ShmemError};
use crate::types::ShmemScalar;

/// An untyped symmetric allocation: flat offset + byte length, identical
/// on all PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymAddr {
    pub(crate) offset: u64,
    pub(crate) len: u64,
}

impl SymAddr {
    /// Flat offset in the symmetric heap.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Allocation length in bytes (after alignment rounding).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-length allocation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flat offset of byte `start` in this allocation, bounds-checking a
    /// `len`-byte access.
    pub fn byte_offset(&self, start: u64, len: u64) -> Result<u64> {
        if start.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(ShmemError::SymmetricBounds {
                offset: self.offset.saturating_add(start),
                len,
            });
        }
        Ok(self.offset + start)
    }
}

/// A typed symmetric array of `count` elements of `T`.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct TypedSym<T: ShmemScalar> {
    pub(crate) addr: SymAddr,
    pub(crate) count: usize,
    _ph: PhantomData<T>,
}

// Manual Copy/Clone: derive would bound them on `T: Copy`, which holds,
// but also on PhantomData quirks; explicit impls keep the handle Copy for
// every ShmemScalar.
impl<T: ShmemScalar> Clone for TypedSym<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ShmemScalar> Copy for TypedSym<T> {}

impl<T: ShmemScalar> TypedSym<T> {
    /// Wrap an untyped allocation. `addr` must hold at least
    /// `count * T::WIDTH` bytes.
    pub fn new(addr: SymAddr, count: usize) -> Result<Self> {
        let need = (count * T::WIDTH) as u64;
        if need > addr.len {
            return Err(ShmemError::SymmetricBounds { offset: addr.offset, len: need });
        }
        Ok(TypedSym { addr, count, _ph: PhantomData })
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The underlying untyped allocation.
    pub fn addr(&self) -> SymAddr {
        self.addr
    }

    /// Flat offset of element `index`, bounds-checking an access of
    /// `count` elements starting there.
    pub fn elem_offset(&self, index: usize, count: usize) -> Result<u64> {
        if index.checked_add(count).is_none_or(|end| end > self.count) {
            return Err(ShmemError::SymmetricBounds {
                offset: self
                    .addr
                    .offset
                    .saturating_add((index as u64).saturating_mul(T::WIDTH as u64)),
                len: (count as u64).saturating_mul(T::WIDTH as u64),
            });
        }
        Ok(self.addr.offset + (index * T::WIDTH) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_offset_bounds() {
        let a = SymAddr { offset: 1000, len: 64 };
        assert_eq!(a.byte_offset(0, 64).unwrap(), 1000);
        assert_eq!(a.byte_offset(10, 54).unwrap(), 1010);
        assert!(a.byte_offset(10, 55).is_err());
        assert!(a.byte_offset(u64::MAX, 2).is_err());
    }

    #[test]
    fn typed_wrap_checks_capacity() {
        let a = SymAddr { offset: 0, len: 32 };
        assert!(TypedSym::<u64>::new(a, 4).is_ok());
        assert!(TypedSym::<u64>::new(a, 5).is_err());
        assert!(TypedSym::<u8>::new(a, 32).is_ok());
    }

    #[test]
    fn elem_offset_math() {
        let a = SymAddr { offset: 100, len: 80 };
        let t = TypedSym::<u32>::new(a, 20).unwrap();
        assert_eq!(t.elem_offset(0, 20).unwrap(), 100);
        assert_eq!(t.elem_offset(5, 1).unwrap(), 120);
        assert!(t.elem_offset(19, 2).is_err());
        assert!(t.elem_offset(20, 0).is_ok(), "end iterator position");
    }

    #[test]
    fn handles_are_copy() {
        let a = SymAddr { offset: 0, len: 16 };
        let t = TypedSym::<f64>::new(a, 2).unwrap();
        let t2 = t;
        assert_eq!(t.count(), t2.count());
        assert_eq!(t.addr(), a);
    }

    #[test]
    fn empty_addr() {
        let a = SymAddr { offset: 0, len: 0 };
        assert!(a.is_empty());
        let t = TypedSym::<u8>::new(a, 0).unwrap();
        assert_eq!(t.count(), 0);
    }
}
