//! Remote atomic memory operations (`shmem_TYPE_atomic_*`).
//!
//! §II-B lists remote atomics among the features a SHMEM library must
//! support. Each operation is shipped as an `AmoReq` frame to the target
//! host and executed inside its service thread, serialized with every
//! other atomic at that host by the heap's AMO lock — which is exactly the
//! OpenSHMEM atomicity domain (atomic with respect to other AMOs on the
//! same datum, not to plain puts).

use ntb_net::AmoOp;
use ntb_sim::{EventKind, OpClass};

use crate::ctx::{OpOptions, ShmemCtx};
use crate::error::Result;
use crate::symmetric::TypedSym;
use crate::types::ShmemAtomicInt;

impl ShmemCtx {
    fn amo<T: ShmemAtomicInt>(
        &self,
        op: AmoOp,
        sym: &TypedSym<T>,
        index: usize,
        operand: T,
        compare: T,
        pe: usize,
    ) -> Result<T> {
        self.amo_with(op, sym, index, operand, compare, pe, OpOptions::new())
    }

    #[allow(clippy::too_many_arguments)]
    fn amo_with<T: ShmemAtomicInt>(
        &self,
        op: AmoOp,
        sym: &TypedSym<T>,
        index: usize,
        operand: T,
        compare: T,
        pe: usize,
        opts: OpOptions,
    ) -> Result<T> {
        self.check_pe(pe)?;
        let off = sym.elem_offset(index, 1)?;
        let old = if pe == self.my_pe() {
            self.heap.local_atomic(op, off, T::WIDTH, operand.to_bits64(), compare.to_bits64())?
        } else {
            let deadline_us = self.wire_deadline(&opts);
            let obs = self.node.obs();
            if obs.is_enabled() {
                let api_op = self.next_api_op();
                let t0 = std::time::Instant::now();
                obs.emit(EventKind::ApiAmoIssue, api_op, [pe as u64, op as u64]);
                let old = self.node.amo_opts(
                    pe,
                    op,
                    off,
                    T::WIDTH,
                    operand.to_bits64(),
                    compare.to_bits64(),
                    deadline_us,
                )?;
                self.node.metrics().record_op(OpClass::Amo, t0.elapsed().as_micros() as u64);
                obs.emit(EventKind::ApiAmoComplete, api_op, [pe as u64, op as u64]);
                old
            } else {
                self.node.amo_opts(
                    pe,
                    op,
                    off,
                    T::WIDTH,
                    operand.to_bits64(),
                    compare.to_bits64(),
                    deadline_us,
                )?
            }
        };
        Ok(T::from_bits64(old))
    }

    /// `shmem_TYPE_atomic_fetch_add` with explicit [`OpOptions`] — the
    /// deadline-capable AMO entry point ([`OpOptions::deadline`] is the
    /// only option the AMO path consumes; AMOs always ride the control
    /// mailbox, so mode/coalescing do not apply).
    pub fn atomic_fetch_add_opts<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
        opts: OpOptions,
    ) -> Result<T> {
        self.amo_with(AmoOp::FetchAdd, sym, index, value, T::from_bits64(0), pe, opts)
    }

    /// `shmem_TYPE_atomic_compare_swap` with explicit [`OpOptions`].
    pub fn atomic_compare_swap_opts<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        compare: T,
        value: T,
        pe: usize,
        opts: OpOptions,
    ) -> Result<T> {
        self.amo_with(AmoOp::CompareSwap, sym, index, value, compare, pe, opts)
    }

    /// `shmem_TYPE_atomic_fetch_add`: add `value` at PE `pe`, return the
    /// old value.
    ///
    /// ```
    /// use shmem_core::{ShmemConfig, ShmemWorld};
    /// ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(3), |ctx| {
    ///     let counter = ctx.calloc_array::<u64>(1).unwrap();
    ///     // Every PE increments the counter hosted at PE 0.
    ///     let old = ctx.atomic_fetch_add(&counter, 0, 1u64, 0).unwrap();
    ///     assert!(old < 3);
    ///     ctx.barrier_all().unwrap();
    ///     if ctx.my_pe() == 0 {
    ///         assert_eq!(ctx.read_local::<u64>(&counter, 0).unwrap(), 3);
    ///     }
    /// })
    /// .unwrap();
    /// ```
    pub fn atomic_fetch_add<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::FetchAdd, sym, index, value, T::from_bits64(0), pe)
    }

    /// `shmem_TYPE_atomic_add`: add without fetching.
    pub fn atomic_add<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<()> {
        self.atomic_fetch_add(sym, index, value, pe).map(|_| ())
    }

    /// `shmem_TYPE_atomic_inc` (+1 without fetching).
    pub fn atomic_inc<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        pe: usize,
    ) -> Result<()> {
        self.atomic_add(sym, index, T::from_bits64(1), pe)
    }

    /// `shmem_TYPE_atomic_fetch_inc`.
    pub fn atomic_fetch_inc<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        pe: usize,
    ) -> Result<T> {
        self.atomic_fetch_add(sym, index, T::from_bits64(1), pe)
    }

    /// `shmem_TYPE_atomic_swap`: store `value`, return the old value.
    pub fn atomic_swap<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::Swap, sym, index, value, T::from_bits64(0), pe)
    }

    /// `shmem_TYPE_atomic_compare_swap`: store `value` iff the current
    /// value equals `compare`; returns the old value either way.
    pub fn atomic_compare_swap<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        compare: T,
        value: T,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::CompareSwap, sym, index, value, compare, pe)
    }

    /// `shmem_TYPE_atomic_fetch`: atomic read.
    pub fn atomic_fetch<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::Fetch, sym, index, T::from_bits64(0), T::from_bits64(0), pe)
    }

    /// `shmem_TYPE_atomic_set`: atomic write.
    pub fn atomic_set<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<()> {
        self.amo(AmoOp::Set, sym, index, value, T::from_bits64(0), pe).map(|_| ())
    }

    /// `shmem_TYPE_atomic_fetch_and`.
    pub fn atomic_fetch_and<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::FetchAnd, sym, index, value, T::from_bits64(0), pe)
    }

    /// `shmem_TYPE_atomic_fetch_or`.
    pub fn atomic_fetch_or<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::FetchOr, sym, index, value, T::from_bits64(0), pe)
    }

    /// `shmem_TYPE_atomic_fetch_xor`.
    pub fn atomic_fetch_xor<T: ShmemAtomicInt>(
        &self,
        sym: &TypedSym<T>,
        index: usize,
        value: T,
        pe: usize,
    ) -> Result<T> {
        self.amo(AmoOp::FetchXor, sym, index, value, T::from_bits64(0), pe)
    }
}
