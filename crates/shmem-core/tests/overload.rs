//! End-to-end overload survival: deadlines, credit exhaustion and
//! resource-fault chaos exercised through the public OpenSHMEM API.
//!
//! These tests drive the whole stack — `OpOptions::deadline` /
//! `ShmemConfig::with_overload` at the top, wire deadlines, credit gates
//! and bounded forward queues in the middle, the fault injector at the
//! bottom — and assert two things throughout: overload surfaces as
//! *typed errors in bounded time* (never a hang, never a panic), and the
//! event trace the run leaves behind certifies clean under the protocol
//! invariant checker (including the overload invariants 9 and 10).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ntb_sim::FaultPlan;
use shmem_core::{OpOptions, OverloadConfig, ShmemConfig, ShmemError, ShmemWorld};

/// A put toward a frozen PE with a deadline shorter than the freeze must
/// surface `DeadlineExceeded` from `quiet` — typed, attributable, and in
/// bounded time (deadline + one retry-sweeper tick, not the multi-second
/// retry ladder that `LinkFailed` rides).
#[test]
fn deadline_put_to_frozen_pe_surfaces_deadline_exceeded() {
    // Freeze PE 1 from 20ms to 720ms: long enough to stop acks cold,
    // short enough that the heartbeat detector (~2s+ at defaults) never
    // declares it dead — death would outrank the deadline verdict.
    let cfg =
        ShmemConfig::fast_sim().with_hosts(3).with_faults(FaultPlan::none().with_node_freeze(
            1,
            Duration::from_millis(20),
            Duration::from_millis(700),
        ));
    let results = ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.calloc_array::<u64>(64).expect("alloc");
        ctx.barrier_all().expect("bring-up barrier");
        // Let the freeze land before anyone transmits.
        std::thread::sleep(Duration::from_millis(80));
        let verdict = if ctx.my_pe() == 0 {
            let data = vec![7u64; 64];
            let t0 = Instant::now();
            let r = ctx
                .put_slice_opts(
                    &sym,
                    0,
                    &data,
                    1,
                    OpOptions::new().deadline(Duration::from_millis(50)),
                )
                .and_then(|()| ctx.quiet());
            Some((r, t0.elapsed()))
        } else {
            None
        };
        // Outlive the thaw so teardown finds every PE responsive again.
        std::thread::sleep(Duration::from_millis(700));
        ctx.quiet().ok();
        verdict
    })
    .expect("world");

    let (verdict, elapsed) = results[0].clone().expect("PE 0 returns a verdict");
    let err = verdict.expect_err("put against a frozen PE with a 50ms deadline cannot complete");
    assert_eq!(err, ShmemError::DeadlineExceeded, "typed deadline verdict, got {err}");
    // Bounded time: deadline (50ms) + sweeper tick (≤50ms) + slack. The
    // point is that it is nowhere near the freeze duration or the
    // LinkFailed retry ladder.
    assert!(elapsed < Duration::from_millis(600), "quiet took {elapsed:?}, expected bounded");
}

/// With a tiny credit window and a frozen receiver the credit gate runs
/// dry; the next put must fail `Overloaded` (naming the credit window)
/// after one bounded admission wait instead of queueing unboundedly.
#[test]
fn credit_exhaustion_surfaces_overloaded() {
    let cfg = ShmemConfig::fast_sim()
        .with_hosts(3)
        .with_overload(OverloadConfig { credit_window: 2, ..OverloadConfig::default() })
        .with_faults(FaultPlan::none().with_node_freeze(
            1,
            Duration::from_millis(20),
            Duration::from_millis(700),
        ));
    let results = ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.calloc_array::<u64>(8).expect("alloc");
        ctx.barrier_all().expect("bring-up barrier");
        std::thread::sleep(Duration::from_millis(80));
        let verdict = if ctx.my_pe() == 0 {
            let data = vec![1u64; 8];
            let mut hit = None;
            // 2 credits are granted at bring-up; the frozen neighbour
            // re-grants nothing, so within a few puts admission must
            // fail typed. Each failing attempt waits at most one
            // ack-timeout before giving up.
            for _ in 0..4 {
                if let Err(e) = ctx.put_slice(&sym, 0, &data, 1) {
                    hit = Some(e);
                    break;
                }
            }
            Some(hit)
        } else {
            None
        };
        std::thread::sleep(Duration::from_millis(700));
        // Drain what did get admitted; the frozen PE is thawed by now.
        ctx.quiet().ok();
        verdict
    })
    .expect("world");

    let hit = results[0].clone().expect("PE 0 returns a verdict");
    let err = hit.expect("credit window of 2 must reject one of 4 puts to a frozen peer");
    assert_eq!(
        err,
        ShmemError::Overloaded { queue: "link credit window" },
        "typed admission verdict, got {err}"
    );
}

/// Chaos cell for the *resource* fault family: a slowed port and a
/// shrunken forward queue under deadline-bounded all-to-all traffic.
/// Errors are tolerated (shed load is the design working); what must
/// hold is that the trace certifies clean under all ten invariants —
/// including queue bounds, credit conservation and deadline admission —
/// and that the overload machinery actually left evidence to check.
#[test]
fn resource_fault_chaos_trace_certifies_clean() {
    const PES: usize = 3;
    let cfg = ShmemConfig::fast_sim()
        .with_hosts(PES)
        .with_overload(OverloadConfig {
            forward_queue_cap: 16,
            high_watermark: 12,
            low_watermark: 8,
            ..OverloadConfig::default()
        })
        .with_faults(
            FaultPlan::none()
                .with_slow_port(0, Duration::from_millis(30), 8.0, Duration::from_millis(150))
                .with_queue_shrink(1, Duration::from_millis(50), 8),
        );
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let sym = ctx.calloc_array::<u64>(256).expect("alloc");
        ctx.barrier_all().expect("bring-up barrier");
        let me = ctx.my_pe();
        let data: Vec<u64> = (0..64).map(|i| (me * 1000 + i) as u64).collect();
        for round in 0..24u64 {
            // Alternate the direct neighbour and the two-hop target so
            // both the terminating path and the forward queue see
            // deadline-carrying traffic through the fault window.
            let dest = if round % 2 == 0 { (me + 1) % PES } else { (me + 2) % PES };
            let opts = OpOptions::new().deadline(Duration::from_millis(5));
            // Sheds and expiries are legal outcomes here — only *typed*
            // ones, which the assertion below pins down.
            if let Err(e) = ctx.put_slice_opts(&sym, 0, &data, dest, opts) {
                assert!(
                    matches!(e, ShmemError::DeadlineExceeded | ShmemError::Overloaded { .. }),
                    "overload run may shed, but only typed: {e}"
                );
            }
            if let Err(e) = ctx.quiet() {
                assert!(
                    matches!(e, ShmemError::DeadlineExceeded | ShmemError::Overloaded { .. }),
                    "quiet may report shed work, but only typed: {e}"
                );
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Run past the slow-port hold so the trace ends on a healthy,
        // quiescent network (the checker's stated precondition).
        std::thread::sleep(Duration::from_millis(120));
        ctx.quiet().ok();
        ctx.barrier_all().expect("drain barrier");
        Arc::clone(log)
    })
    .expect("world");

    let log = Arc::clone(&results[0]);
    let events = log.take();
    assert_eq!(log.dropped(), 0, "trace overflowed; grow the ring before certifying");
    let report = ntb_net::check(&events, PES);
    assert!(report.is_clean(), "{}", report.render_violations());
    assert!(
        report.overload_events_checked > 0,
        "overload machinery left no queue/credit evidence in {} events",
        events.len()
    );
    assert!(
        report.deadline_tx_checked > 0,
        "deadline-carrying traffic left no DeadlineTx evidence in {} events",
        events.len()
    );
}
