//! Tests for the API extensions beyond the paper's core: the
//! dissemination barrier (the paper's "future work" on barrier latency),
//! strided RMA, teams/active sets, variable-length collect, and
//! multi-flag waits.

use shmem_core::{
    ActiveSet, BarrierAlgorithm, CmpOp, ReduceOp, ShmemConfig, ShmemWorld, TransferMode,
};

fn cfg(hosts: usize) -> ShmemConfig {
    ShmemConfig::fast_sim().with_hosts(hosts)
}

// ---------------------------------------------------------------------
// Dissemination barrier
// ---------------------------------------------------------------------

#[test]
fn dissemination_barrier_separates_epochs() {
    for hosts in [2usize, 3, 5, 6] {
        let c = cfg(hosts).with_barrier_algorithm(BarrierAlgorithm::Dissemination);
        ShmemWorld::run(c, |ctx| {
            let sym = ctx.calloc_array::<u64>(ctx.num_pes()).unwrap();
            for epoch in 0..6u64 {
                for pe in 0..ctx.num_pes() {
                    let v = epoch * 100 + ctx.my_pe() as u64;
                    if pe == ctx.my_pe() {
                        ctx.write_local(&sym, ctx.my_pe(), v).unwrap();
                    } else {
                        ctx.put(&sym, ctx.my_pe(), v, pe).unwrap();
                    }
                }
                ctx.barrier_all().unwrap();
                let got = ctx.read_local_slice::<u64>(&sym, 0, ctx.num_pes()).unwrap();
                for (slot, v) in got.iter().enumerate() {
                    assert_eq!(*v, epoch * 100 + slot as u64, "hosts {hosts} epoch {epoch}");
                }
                ctx.barrier_all().unwrap();
            }
        })
        .unwrap_or_else(|e| panic!("hosts {hosts}: {e}"));
    }
}

#[test]
fn both_barrier_algorithms_interoperate_with_collectives() {
    for alg in [BarrierAlgorithm::RingSweep, BarrierAlgorithm::Dissemination] {
        let c = cfg(4).with_barrier_algorithm(alg);
        let sums = ShmemWorld::run(c, |ctx| {
            ctx.allreduce(ReduceOp::Sum, &[ctx.my_pe() as u64]).unwrap()[0]
        })
        .unwrap();
        assert_eq!(sums, vec![6, 6, 6, 6], "{alg:?}");
    }
}

// ---------------------------------------------------------------------
// Strided RMA
// ---------------------------------------------------------------------

#[test]
fn iput_strided_target() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.calloc_array::<u32>(16).unwrap();
        if ctx.my_pe() == 0 {
            // Every second source element into every third target slot.
            let src: Vec<u32> = (0..8).map(|i| i * 10).collect();
            ctx.iput(&sym, 1, 3, &src, 2, 4, 1).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            let got = ctx.read_local_slice::<u32>(&sym, 0, 16).unwrap();
            // src[0]=0 -> [1], src[2]=20 -> [4], src[4]=40 -> [7], src[6]=60 -> [10]
            let mut expect = vec![0u32; 16];
            expect[1] = 0;
            expect[4] = 20;
            expect[7] = 40;
            expect[10] = 60;
            assert_eq!(got, expect);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn iput_contiguous_fast_path_matches_put() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.calloc_array::<i64>(8).unwrap();
        if ctx.my_pe() == 0 {
            let src: Vec<i64> = vec![-1, -2, -3, -4];
            ctx.iput(&sym, 2, 1, &src, 1, 4, 1).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            assert_eq!(
                ctx.read_local_slice::<i64>(&sym, 0, 8).unwrap(),
                vec![0, 0, -1, -2, -3, -4, 0, 0]
            );
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn iget_strided_source() {
    ShmemWorld::run(cfg(3), |ctx| {
        let sym = ctx.calloc_array::<u16>(12).unwrap();
        let mine: Vec<u16> = (0..12).map(|i| (ctx.my_pe() * 100 + i) as u16).collect();
        ctx.write_local_slice(&sym, 0, &mine).unwrap();
        ctx.barrier_all().unwrap();
        // Every third element of PE 2's array, starting at index 1.
        let got = ctx.iget::<u16>(&sym, 1, 3, 4, 2).unwrap();
        assert_eq!(got, vec![201, 204, 207, 210]);
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn strided_errors() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.calloc_array::<u32>(8).unwrap();
        assert!(ctx.iput(&sym, 0, 0, &[1u32, 2], 1, 2, 1).is_err(), "zero target stride");
        assert!(ctx.iput(&sym, 0, 1, &[1u32, 2], 0, 2, 1).is_err(), "zero source stride");
        assert!(ctx.iput(&sym, 0, 1, &[1u32, 2], 3, 2, 1).is_err(), "source overrun");
        assert!(ctx.iget::<u32>(&sym, 0, 0, 2, 1).is_err(), "zero get stride");
        // Strided writes beyond the target are caught by put's bounds.
        assert!(ctx.iput(&sym, 6, 2, &[1u32, 2], 1, 2, 1).is_err(), "target overrun");
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Teams / active sets
// ---------------------------------------------------------------------

#[test]
fn team_barrier_only_synchronizes_members() {
    ShmemWorld::run(cfg(5), |ctx| {
        // Odd PEs {1, 3} form a team; the rest pass straight through.
        let team = ctx.team_split(ActiveSet::new(1, 1, 2)).unwrap();
        assert_eq!(team.is_member(), ctx.my_pe() == 1 || ctx.my_pe() == 3);
        for _ in 0..5 {
            ctx.team_barrier(&team).unwrap();
        }
        ctx.barrier_all().unwrap();
        ctx.team_destroy(team).unwrap();
    })
    .unwrap();
}

#[test]
fn team_barrier_orders_member_traffic() {
    ShmemWorld::run(cfg(6), |ctx| {
        // Even PEs {0, 2, 4} exchange data under their own barrier.
        let set = ActiveSet::new(0, 1, 3);
        let team = ctx.team_split(set).unwrap();
        let sym = ctx.calloc_array::<u64>(3).unwrap();
        if let Some(rank) = team.my_rank() {
            for epoch in 1..4u64 {
                let next = set.member((rank + 1) % 3);
                ctx.put(&sym, rank, epoch * 10 + rank as u64, next).unwrap();
                ctx.team_barrier(&team).unwrap();
                let left_rank = (rank + 2) % 3;
                assert_eq!(
                    ctx.read_local::<u64>(&sym, left_rank).unwrap(),
                    epoch * 10 + left_rank as u64
                );
                ctx.team_barrier(&team).unwrap();
            }
        }
        ctx.barrier_all().unwrap();
        ctx.team_destroy(team).unwrap();
    })
    .unwrap();
}

#[test]
fn team_broadcast_and_allreduce() {
    ShmemWorld::run(cfg(6), |ctx| {
        let set = ActiveSet::new(1, 0, 4); // PEs 1..=4
        let team = ctx.team_split(set).unwrap();
        let sym = ctx.calloc_array::<f64>(4).unwrap();
        if team.my_rank() == Some(2) {
            ctx.write_local_slice(&sym, 0, &[1.5, 2.5, 3.5, 4.5]).unwrap();
        }
        ctx.team_broadcast(&team, &sym, 0, 4, 2).unwrap();
        if team.is_member() {
            assert_eq!(ctx.read_local_slice::<f64>(&sym, 0, 4).unwrap(), vec![1.5, 2.5, 3.5, 4.5]);
        }
        // Reduce over the team only: 1+2+3+4 = 10 (world would be 15).
        let r = ctx.team_allreduce(&team, ReduceOp::Sum, &[ctx.my_pe() as u64]).unwrap();
        match team.my_rank() {
            Some(_) => assert_eq!(r, Some(vec![10])),
            None => assert_eq!(r, None),
        }
        ctx.barrier_all().unwrap();
        ctx.team_destroy(team).unwrap();
    })
    .unwrap();
}

#[test]
fn team_world_equals_barrier_all_domain() {
    ShmemWorld::run(cfg(4), |ctx| {
        let team = ctx.team_world().unwrap();
        assert_eq!(team.size(), 4);
        assert_eq!(team.my_rank(), Some(ctx.my_pe()));
        ctx.team_barrier(&team).unwrap();
        ctx.team_destroy(team).unwrap();
    })
    .unwrap();
}

#[test]
fn oversized_active_set_rejected() {
    ShmemWorld::run(cfg(3), |ctx| {
        assert!(ctx.team_split(ActiveSet::new(0, 1, 3)).is_err(), "member 4 beyond world");
        // All PEs failed together: no stray barrier state; world healthy.
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Variable-length collect
// ---------------------------------------------------------------------

#[test]
fn collect_variable_contributions() {
    ShmemWorld::run(cfg(4), |ctx| {
        let me = ctx.my_pe();
        let dest = ctx.calloc_array::<u32>(32).unwrap();
        // PE i contributes i+1 elements of value (i+1)*11.
        let src: Vec<u32> = vec![(me as u32 + 1) * 11; me + 1];
        let total = ctx.collect(&dest, &src).unwrap();
        assert_eq!(total, 1 + 2 + 3 + 4);
        let got = ctx.read_local_slice::<u32>(&dest, 0, total).unwrap();
        assert_eq!(got, vec![11, 22, 22, 33, 33, 33, 44, 44, 44, 44]);
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn collect_rejects_small_dest() {
    ShmemWorld::run(cfg(3), |ctx| {
        let dest = ctx.calloc_array::<u32>(2).unwrap();
        let r = ctx.collect(&dest, &[1u32, 2]);
        assert!(r.is_err());
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Multi-flag waits
// ---------------------------------------------------------------------

#[test]
fn wait_until_any_and_all() {
    ShmemWorld::run(cfg(2), |ctx| {
        let flags = ctx.calloc_array::<u64>(4).unwrap();
        if ctx.my_pe() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            ctx.put(&flags, 2, 1u64, 1).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
            for i in [0usize, 1, 3] {
                ctx.put(&flags, i, 1u64, 1).unwrap();
            }
        } else {
            let pos = ctx.wait_until_any(&flags, &[0, 1, 2, 3], CmpOp::Eq, 1u64).unwrap();
            assert_eq!(pos, 2, "flag 2 fires first");
            let all = ctx.wait_until_all(&flags, &[0, 1, 2, 3], CmpOp::Eq, 1u64).unwrap();
            assert_eq!(all, vec![1, 1, 1, 1]);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn locality_query() {
    ShmemWorld::run(cfg(3), |ctx| {
        assert!(ctx.is_locally_accessible(ctx.my_pe()));
        for pe in 0..3 {
            if pe != ctx.my_pe() {
                assert!(!ctx.is_locally_accessible(pe));
            }
        }
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Modes × extensions interplay
// ---------------------------------------------------------------------

#[test]
fn full_stack_on_mesh_topology() {
    // The whole OpenSHMEM model must run unchanged on the switch baseline.
    for alg in [BarrierAlgorithm::RingSweep, BarrierAlgorithm::Dissemination] {
        let c = cfg(5).with_topology(shmem_core::Topology::clique(5)).with_barrier_algorithm(alg);
        ShmemWorld::run(c, |ctx| {
            let sym = ctx.calloc_array::<u64>(8).unwrap();
            // Put to the "far" host (adjacent on the mesh).
            let far = (ctx.my_pe() + 2) % ctx.num_pes();
            ctx.put(&sym, ctx.my_pe(), ctx.my_pe() as u64 + 1, far).unwrap();
            ctx.barrier_all().unwrap();
            let from = (ctx.my_pe() + ctx.num_pes() - 2) % ctx.num_pes();
            assert_eq!(ctx.read_local::<u64>(&sym, from).unwrap(), from as u64 + 1);
            // Atomics and reductions too.
            let counter = ctx.calloc_array::<u64>(1).unwrap();
            ctx.atomic_fetch_add(&counter, 0, 1u64, 0).unwrap();
            let total = ctx.allreduce(ReduceOp::Sum, &[1u64]).unwrap()[0];
            assert_eq!(total, 5);
            ctx.barrier_all().unwrap();
        })
        .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    }
}

#[test]
fn dissemination_barrier_under_memcpy_default() {
    let c = cfg(4)
        .with_barrier_algorithm(BarrierAlgorithm::Dissemination)
        .with_mode(TransferMode::Memcpy);
    ShmemWorld::run(c, |ctx| {
        let sym = ctx.calloc_array::<u8>(1024).unwrap();
        if ctx.my_pe() == 0 {
            ctx.put_slice(&sym, 0, &[0x55u8; 1024], 2).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 2 {
            assert_eq!(ctx.read_local_slice::<u8>(&sym, 0, 1024).unwrap(), vec![0x55u8; 1024]);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Put-with-signal and ring broadcast
// ---------------------------------------------------------------------

#[test]
fn put_with_signal_orders_data_before_signal() {
    use shmem_core::SignalOp;
    // Producer/consumer without any barrier or quiet: the signal alone
    // must guarantee data visibility, across 1 and 2 hops.
    for target in [1usize, 2] {
        ShmemWorld::run(cfg(5), |ctx| {
            let data = ctx.calloc_array::<u64>(512).unwrap();
            let sig = ctx.calloc_array::<u64>(1).unwrap();
            if ctx.my_pe() == 0 {
                let payload: Vec<u64> = (0..512).map(|i| i * 3 + 1).collect();
                ctx.put_with_signal(&data, 0, &payload, &sig, 0, 7u64, SignalOp::Set, target)
                    .unwrap();
            }
            if ctx.my_pe() == target {
                let v = ctx.signal_wait_until(&sig, 0, CmpOp::Eq, 7u64).unwrap();
                assert_eq!(v, 7);
                let got = ctx.read_local_slice::<u64>(&data, 0, 512).unwrap();
                for (i, x) in got.iter().enumerate() {
                    assert_eq!(*x, i as u64 * 3 + 1, "data visible before signal");
                }
            }
            ctx.barrier_all().unwrap();
        })
        .unwrap();
    }
}

#[test]
fn put_with_signal_add_accumulates_producers() {
    use shmem_core::SignalOp;
    ShmemWorld::run(cfg(4), |ctx| {
        let data = ctx.calloc_array::<u32>(4).unwrap();
        let sig = ctx.calloc_array::<u64>(1).unwrap();
        if ctx.my_pe() != 3 {
            // Three producers, each signalling +1 after writing its slot.
            ctx.put_with_signal(
                &data,
                ctx.my_pe(),
                &[ctx.my_pe() as u32 + 10],
                &sig,
                0,
                1u64,
                SignalOp::Add,
                3,
            )
            .unwrap();
        } else {
            let v = ctx.signal_wait_until(&sig, 0, CmpOp::Ge, 3u64).unwrap();
            assert_eq!(v, 3);
            let got = ctx.read_local_slice::<u32>(&data, 0, 3).unwrap();
            assert_eq!(got, vec![10, 11, 12]);
            assert_eq!(ctx.signal_fetch(&sig, 0).unwrap(), 3);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn ring_broadcast_matches_direct_broadcast() {
    for hosts in [2usize, 3, 5] {
        for root in 0..hosts {
            ShmemWorld::run(cfg(hosts), |ctx| {
                let sym = ctx.calloc_array::<i64>(64).unwrap();
                if ctx.my_pe() == root {
                    let data: Vec<i64> = (0..64).map(|i| (root * 1000 + i) as i64).collect();
                    ctx.write_local_slice(&sym, 0, &data).unwrap();
                }
                ctx.broadcast_ring(&sym, 0, 64, root).unwrap();
                let got = ctx.read_local_slice::<i64>(&sym, 0, 64).unwrap();
                for (i, v) in got.iter().enumerate() {
                    assert_eq!(*v, (root * 1000 + i) as i64, "hosts {hosts} root {root}");
                }
                ctx.barrier_all().unwrap();
            })
            .unwrap_or_else(|e| panic!("hosts {hosts} root {root}: {e}"));
        }
    }
}
