//! Whole-stack SPMD tests: every OpenSHMEM feature exercised through
//! `ShmemWorld::run` on 1–6 PEs (fast functional simulation).

use shmem_core::{
    CmpOp, OpOptions, ReduceOp, ShmemConfig, ShmemCtx, ShmemError, ShmemWorld, TransferMode,
    TypedSym,
};

fn cfg(hosts: usize) -> ShmemConfig {
    ShmemConfig::fast_sim().with_hosts(hosts)
}

#[test]
fn identity_and_world_size() {
    let ids = ShmemWorld::run(cfg(4), |ctx| (ctx.my_pe(), ctx.num_pes())).unwrap();
    for (i, (pe, n)) in ids.iter().enumerate() {
        assert_eq!(*pe, i);
        assert_eq!(*n, 4);
    }
}

#[test]
fn single_pe_world_works() {
    let r = ShmemWorld::run(cfg(1), |ctx| {
        let sym = ctx.malloc_array::<u64>(4).unwrap();
        ctx.write_local_slice(&sym, 0, &[1, 2, 3, 4]).unwrap();
        ctx.barrier_all().unwrap();
        // Self put/get.
        ctx.put(&sym, 0, 99u64, 0).unwrap();
        assert_eq!(ctx.get::<u64>(&sym, 0, 0).unwrap(), 99);
        ctx.read_local_slice(&sym, 0, 4).unwrap().iter().sum::<u64>()
    })
    .unwrap();
    assert_eq!(r[0], 99 + 2 + 3 + 4);
}

#[test]
fn symmetric_offsets_identical_across_pes() {
    let offsets = ShmemWorld::run(cfg(3), |ctx| {
        let a = ctx.malloc(100).unwrap();
        let b = ctx.malloc(4096).unwrap();
        let c = ctx.malloc_array::<f64>(17).unwrap();
        (a.offset(), b.offset(), c.addr().offset())
    })
    .unwrap();
    assert_eq!(offsets[0], offsets[1]);
    assert_eq!(offsets[1], offsets[2]);
}

#[test]
fn put_ring_neighbor_exchange() {
    ShmemWorld::run(cfg(3), |ctx| {
        let sym = ctx.malloc_array::<u64>(8).unwrap();
        let right = (ctx.my_pe() + 1) % ctx.num_pes();
        let data: Vec<u64> = (0..8).map(|i| (ctx.my_pe() as u64) * 100 + i).collect();
        ctx.put_slice(&sym, 0, &data, right).unwrap();
        ctx.barrier_all().unwrap();
        let left = (ctx.my_pe() + ctx.num_pes() - 1) % ctx.num_pes();
        let got = ctx.read_local_slice::<u64>(&sym, 0, 8).unwrap();
        let expect: Vec<u64> = (0..8).map(|i| (left as u64) * 100 + i).collect();
        assert_eq!(got, expect);
    })
    .unwrap();
}

#[test]
fn put_two_hops_and_memcpy_mode() {
    ShmemWorld::run(cfg(5), |ctx| {
        let sym = ctx.malloc_array::<i32>(16).unwrap();
        if ctx.my_pe() == 0 {
            // Two hops right.
            ctx.put_slice_opts(
                &sym,
                0,
                &[-7i32; 16],
                2,
                OpOptions::new().mode(TransferMode::Memcpy),
            )
            .unwrap();
            // Two hops left.
            ctx.put_slice_opts(&sym, 0, &[9i32; 16], 3, OpOptions::new().mode(TransferMode::Dma))
                .unwrap();
        }
        ctx.barrier_all().unwrap();
        match ctx.my_pe() {
            2 => assert_eq!(ctx.read_local_slice::<i32>(&sym, 0, 16).unwrap(), vec![-7; 16]),
            3 => assert_eq!(ctx.read_local_slice::<i32>(&sym, 0, 16).unwrap(), vec![9; 16]),
            _ => {}
        }
    })
    .unwrap();
}

#[test]
fn get_round_trip_all_pairs() {
    ShmemWorld::run(cfg(4), |ctx| {
        let sym = ctx.malloc_array::<u64>(4).unwrap();
        let mine: Vec<u64> = (0..4).map(|i| (ctx.my_pe() as u64) << 8 | i).collect();
        ctx.write_local_slice(&sym, 0, &mine).unwrap();
        ctx.barrier_all().unwrap();
        for pe in 0..ctx.num_pes() {
            let theirs = ctx.get_slice::<u64>(&sym, 0, 4, pe).unwrap();
            let expect: Vec<u64> = (0..4).map(|i| (pe as u64) << 8 | i).collect();
            assert_eq!(theirs, expect, "get from {pe}");
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn large_put_spans_chunks_and_window_buffers() {
    // Heap chunk 64 KiB and a 1 MiB payload: crosses many chunk
    // boundaries and many put chunks.
    let cfg = cfg(3).with_heap_chunk(64 << 10);
    ShmemWorld::run(cfg, |ctx| {
        let n = 1 << 20;
        let sym = ctx.malloc_array::<u8>(n).unwrap();
        if ctx.my_pe() == 0 {
            let data: Vec<u8> = (0..n).map(|i| (i % 253) as u8).collect();
            ctx.put_slice(&sym, 0, &data, 1).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            let got = ctx.read_local_slice::<u8>(&sym, 0, n).unwrap();
            assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 253) as u8));
        }
    })
    .unwrap();
}

#[test]
fn quiet_makes_puts_visible() {
    ShmemWorld::run(cfg(3), |ctx| {
        let sym = ctx.malloc_array::<u64>(1).unwrap();
        let flag = ctx.malloc_array::<u64>(1).unwrap();
        if ctx.my_pe() == 0 {
            ctx.put(&sym, 0, 0xFEED, 1).unwrap();
            ctx.quiet().expect("quiet"); // data delivered at PE 1
            ctx.put(&flag, 0, 1u64, 1).unwrap();
        }
        if ctx.my_pe() == 1 {
            ctx.wait_until(&flag, 0, CmpOp::Eq, 1u64).unwrap();
            // fence/quiet at the writer ordered data before flag.
            assert_eq!(ctx.read_local::<u64>(&sym, 0).unwrap(), 0xFEED);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn barrier_separates_epochs() {
    ShmemWorld::run(cfg(4), |ctx| {
        let sym = ctx.malloc_array::<u64>(4).unwrap();
        for epoch in 0..5u64 {
            // Everyone writes its slot on every PE.
            for pe in 0..ctx.num_pes() {
                let v = epoch * 1000 + ctx.my_pe() as u64;
                if pe == ctx.my_pe() {
                    ctx.write_local(&sym, ctx.my_pe(), v).unwrap();
                } else {
                    ctx.put(&sym, ctx.my_pe(), v, pe).unwrap();
                }
            }
            ctx.barrier_all().unwrap();
            // After the barrier every slot must carry this epoch's value.
            let got = ctx.read_local_slice::<u64>(&sym, 0, 4).unwrap();
            for (slot, v) in got.iter().enumerate() {
                assert_eq!(*v, epoch * 1000 + slot as u64, "epoch {epoch} slot {slot}");
            }
            ctx.barrier_all().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn atomics_fetch_add_and_cas() {
    ShmemWorld::run(cfg(4), |ctx| {
        let counter = ctx.malloc_array::<u64>(1).unwrap();
        for _ in 0..25 {
            ctx.atomic_fetch_add(&counter, 0, 1u64, 0).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 0 {
            assert_eq!(ctx.read_local::<u64>(&counter, 0).unwrap(), 100);
        }
        ctx.barrier_all().unwrap();
        // CAS election: exactly one PE wins.
        let winner = ctx.malloc_array::<u64>(1).unwrap();
        let won =
            ctx.atomic_compare_swap(&winner, 0, 0u64, ctx.my_pe() as u64 + 1, 0).unwrap() == 0;
        ctx.barrier_all().unwrap();
        let winners = ctx.allreduce(ReduceOp::Sum, &[u64::from(won)]).unwrap();
        assert_eq!(winners[0], 1);
    })
    .unwrap();
}

#[test]
fn atomic_bitwise_and_swap_narrow_types() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.malloc_array::<u16>(2).unwrap();
        ctx.write_local_slice(&sym, 0, &[0xF0F0u16, 0]).unwrap();
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            let old = ctx.atomic_fetch_and(&sym, 0, 0x0FF0u16, 0).unwrap();
            assert_eq!(old, 0xF0F0);
            let old = ctx.atomic_fetch_or(&sym, 0, 0x000Fu16, 0).unwrap();
            assert_eq!(old, 0x00F0);
            let old = ctx.atomic_swap(&sym, 0, 0xAAAAu16, 0).unwrap();
            assert_eq!(old, 0x00FF);
            let v = ctx.atomic_fetch(&sym, 0, 0).unwrap();
            assert_eq!(v, 0xAAAA);
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 0 {
            assert_eq!(ctx.read_local::<u16>(&sym, 0).unwrap(), 0xAAAA);
            assert_eq!(ctx.read_local::<u16>(&sym, 1).unwrap(), 0, "neighbour element untouched");
        }
    })
    .unwrap();
}

#[test]
fn wait_until_and_test() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.malloc_array::<i64>(1).unwrap();
        if ctx.my_pe() == 0 {
            assert!(!ctx.test(&sym, 0, CmpOp::Gt, 5i64).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            ctx.put(&sym, 0, 10i64, 1).unwrap();
        } else {
            let v = ctx.wait_until(&sym, 0, CmpOp::Gt, 5i64).unwrap();
            assert_eq!(v, 10);
            assert!(ctx.test(&sym, 0, CmpOp::Eq, 10i64).unwrap());
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn broadcast_from_each_root() {
    ShmemWorld::run(cfg(4), |ctx| {
        let sym = ctx.malloc_array::<f64>(8).unwrap();
        for root in 0..ctx.num_pes() {
            if ctx.my_pe() == root {
                let data: Vec<f64> = (0..8).map(|i| root as f64 + i as f64 / 10.0).collect();
                ctx.write_local_slice(&sym, 0, &data).unwrap();
            }
            ctx.broadcast(&sym, 0, 8, root).unwrap();
            let got = ctx.read_local_slice::<f64>(&sym, 0, 8).unwrap();
            for (i, v) in got.iter().enumerate() {
                assert_eq!(*v, root as f64 + i as f64 / 10.0, "root {root}");
            }
        }
    })
    .unwrap();
}

#[test]
fn broadcast_value_convenience() {
    let vals = ShmemWorld::run(cfg(3), |ctx| {
        let v = if ctx.my_pe() == 2 { 1234u32 } else { 0 };
        ctx.broadcast_value(v, 2).unwrap()
    })
    .unwrap();
    assert_eq!(vals, vec![1234, 1234, 1234]);
}

#[test]
fn allreduce_matches_oracle() {
    ShmemWorld::run(cfg(5), |ctx| {
        let n = ctx.num_pes() as i64;
        let me = ctx.my_pe() as i64;
        let src: Vec<i64> = (0..6).map(|i| me * 10 + i).collect();
        let sums = ctx.allreduce(ReduceOp::Sum, &src).unwrap();
        for (i, s) in sums.iter().enumerate() {
            // sum over pe of (pe*10 + i)
            let expect = 10 * (n * (n - 1) / 2) + n * i as i64;
            assert_eq!(*s, expect);
        }
        let maxs = ctx.allreduce(ReduceOp::Max, &src).unwrap();
        assert_eq!(maxs[5], (n - 1) * 10 + 5);
        let mins = ctx.allreduce(ReduceOp::Min, &src).unwrap();
        assert_eq!(mins[0], 0);
        let prods = ctx.allreduce(ReduceOp::Prod, &[me + 1]).unwrap();
        assert_eq!(prods[0], (1..=n).product::<i64>());
    })
    .unwrap();
}

#[test]
fn reduce_to_root_only_root_sees() {
    let outs = ShmemWorld::run(cfg(3), |ctx| {
        ctx.reduce_to_root(ReduceOp::Sum, &[ctx.my_pe() as u32 + 1], 1).unwrap()
    })
    .unwrap();
    assert_eq!(outs[0], None);
    assert_eq!(outs[1], Some(vec![6]));
    assert_eq!(outs[2], None);
}

#[test]
fn fcollect_gathers_in_pe_order() {
    ShmemWorld::run(cfg(4), |ctx| {
        let n = ctx.num_pes();
        let dest = ctx.malloc_array::<u32>(n * 3).unwrap();
        let src: Vec<u32> = (0..3).map(|i| (ctx.my_pe() as u32) * 100 + i).collect();
        ctx.fcollect(&dest, &src).unwrap();
        let all = ctx.read_local_slice::<u32>(&dest, 0, n * 3).unwrap();
        for pe in 0..n {
            for i in 0..3 {
                assert_eq!(all[pe * 3 + i], (pe as u32) * 100 + i as u32);
            }
        }
    })
    .unwrap();
}

#[test]
fn alltoall_transposes_blocks() {
    ShmemWorld::run(cfg(3), |ctx| {
        let n = ctx.num_pes();
        let dest = ctx.malloc_array::<u64>(n * 2).unwrap();
        // PE i sends block j = [i*10+j, i*10+j] to PE j.
        let src: Vec<u64> = (0..n * 2).map(|k| (ctx.my_pe() * 10 + k / 2) as u64).collect();
        ctx.alltoall(&dest, &src, 2).unwrap();
        let got = ctx.read_local_slice::<u64>(&dest, 0, n * 2).unwrap();
        for pe in 0..n {
            // Block from PE `pe` carries pe*10 + my_pe.
            assert_eq!(got[pe * 2], (pe * 10 + ctx.my_pe()) as u64);
            assert_eq!(got[pe * 2 + 1], (pe * 10 + ctx.my_pe()) as u64);
        }
    })
    .unwrap();
}

#[test]
fn distributed_lock_mutual_exclusion() {
    ShmemWorld::run(cfg(4), |ctx| {
        let lock = ctx.lock_alloc().unwrap();
        let shared = ctx.malloc_array::<u64>(1).unwrap();
        ctx.barrier_all().unwrap();
        for _ in 0..10 {
            ctx.set_lock(&lock).unwrap();
            // Unlocked read-modify-write on PE 0's copy: only safe under
            // the lock.
            let v = ctx.get::<u64>(&shared, 0, 0).unwrap();
            ctx.put(&shared, 0, v + 1, 0).unwrap();
            ctx.quiet().expect("quiet");
            ctx.clear_lock(&lock).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 0 {
            assert_eq!(ctx.read_local::<u64>(&shared, 0).unwrap(), 40);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn test_lock_nonblocking() {
    ShmemWorld::run(cfg(2), |ctx| {
        let lock = ctx.lock_alloc().unwrap();
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 0 {
            assert!(ctx.test_lock(&lock).unwrap());
            ctx.barrier_all().unwrap(); // peer observes it held
            ctx.barrier_all().unwrap();
            ctx.clear_lock(&lock).unwrap();
        } else {
            ctx.barrier_all().unwrap();
            assert!(!ctx.test_lock(&lock).unwrap(), "lock held by PE 0");
            ctx.barrier_all().unwrap();
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn malloc_free_cycles_and_reuse() {
    ShmemWorld::run(cfg(2), |ctx| {
        let a = ctx.malloc(1024).unwrap();
        let first_off = a.offset();
        ctx.free(a).unwrap();
        let b = ctx.malloc(512).unwrap();
        assert_eq!(b.offset(), first_off, "freed space reused");
        ctx.free(b).unwrap();
    })
    .unwrap();
}

#[test]
fn errors_bad_pe_and_bounds() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.malloc_array::<u64>(4).unwrap();
        let err = ctx.put(&sym, 0, 1u64, 9).unwrap_err();
        assert!(matches!(err, ShmemError::BadPe { pe: 9, .. }));
        let err = ctx.put_slice(&sym, 3, &[1u64, 2], 0).unwrap_err();
        assert!(matches!(err, ShmemError::SymmetricBounds { .. }));
        let err = ctx.get_slice::<u64>(&sym, 0, 5, 0).unwrap_err();
        assert!(matches!(err, ShmemError::SymmetricBounds { .. }));
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn all_scalar_types_roundtrip_remotely() {
    ShmemWorld::run(cfg(2), |ctx| {
        fn roundtrip<T: shmem_core::ShmemScalar>(ctx: &ShmemCtx, vals: &[T]) {
            let sym: TypedSym<T> = ctx.malloc_array(vals.len()).unwrap();
            if ctx.my_pe() == 0 {
                ctx.put_slice(&sym, 0, vals, 1).unwrap();
            }
            ctx.barrier_all().unwrap();
            if ctx.my_pe() == 1 {
                assert_eq!(ctx.read_local_slice::<T>(&sym, 0, vals.len()).unwrap(), vals);
            }
            ctx.barrier_all().unwrap();
        }
        roundtrip(ctx, &[1u8, 255]);
        roundtrip(ctx, &[-5i8, 127]);
        roundtrip(ctx, &[u16::MAX, 7]);
        roundtrip(ctx, &[-1i16, i16::MIN]);
        roundtrip(ctx, &[u32::MAX, 0]);
        roundtrip(ctx, &[i32::MIN, -1]);
        roundtrip(ctx, &[u64::MAX, 1]);
        roundtrip(ctx, &[i64::MIN, i64::MAX]);
        roundtrip(ctx, &[1.5f32, -0.25]);
        roundtrip(ctx, &[std::f64::consts::E, -1e300]);
    })
    .unwrap();
}

#[test]
fn two_pe_world() {
    ShmemWorld::run(cfg(2), |ctx| {
        let sym = ctx.malloc_array::<u64>(1).unwrap();
        let other = 1 - ctx.my_pe();
        ctx.put(&sym, 0, ctx.my_pe() as u64 + 7, other).unwrap();
        ctx.barrier_all().unwrap();
        assert_eq!(ctx.read_local::<u64>(&sym, 0).unwrap(), other as u64 + 7);
    })
    .unwrap();
}

#[test]
fn six_pe_ring_stress() {
    ShmemWorld::run(cfg(6), |ctx| {
        let sym = ctx.malloc_array::<u64>(6).unwrap();
        for round in 0..8u64 {
            for dist in 1..ctx.num_pes() {
                let dest = (ctx.my_pe() + dist) % ctx.num_pes();
                ctx.put(&sym, ctx.my_pe(), round * 100 + ctx.my_pe() as u64, dest).unwrap();
            }
            ctx.barrier_all().unwrap();
            for pe in 0..ctx.num_pes() {
                if pe != ctx.my_pe() {
                    assert_eq!(
                        ctx.read_local::<u64>(&sym, pe).unwrap(),
                        round * 100 + pe as u64,
                        "round {round} slot {pe}"
                    );
                }
            }
            ctx.barrier_all().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn run_root_returns_pe0() {
    let v = ShmemWorld::run_root(cfg(3), |ctx| ctx.my_pe() * 10 + 5).unwrap();
    assert_eq!(v, 5);
}

#[test]
fn short_wait_timeout_is_honored_without_tick_overshoot() {
    // The change-wait loop used a fixed 50 ms re-check tick; a
    // `wait_timeout` shorter than the tick overshot by up to a full tick
    // before the deadline was noticed. The tick is now clipped to the
    // remaining deadline — a 20 ms timeout must report WaitTimeout well
    // before the old 50 ms tick would have woken the waiter.
    let cfg =
        ShmemConfig::builder().hosts(1).wait_timeout(std::time::Duration::from_millis(20)).build();
    ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.malloc_array::<u64>(4).unwrap();

        let t0 = std::time::Instant::now();
        let err = ctx.wait_until(&sym, 0, CmpOp::Eq, 1u64).unwrap_err();
        assert!(matches!(err, ShmemError::WaitTimeout), "got {err:?}");
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(45),
            "wait_until overshot its 20 ms timeout: {elapsed:?}"
        );

        let t0 = std::time::Instant::now();
        let err = ctx.wait_until_any(&sym, &[0, 1, 2], CmpOp::Eq, 1u64).unwrap_err();
        assert!(matches!(err, ShmemError::WaitTimeout), "got {err:?}");
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(45),
            "wait_until_any overshot its 20 ms timeout: {:?}",
            t0.elapsed()
        );

        let t0 = std::time::Instant::now();
        let err = ctx.wait_until_all(&sym, &[0, 1], CmpOp::Eq, 1u64).unwrap_err();
        assert!(matches!(err, ShmemError::WaitTimeout), "got {err:?}");
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(45),
            "wait_until_all overshot its 20 ms timeout: {:?}",
            t0.elapsed()
        );
    })
    .unwrap();
}
