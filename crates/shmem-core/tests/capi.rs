//! The classic-name C API facade: a transliterated C SHMEM kernel must
//! behave exactly like its generic-Rust equivalent.

use shmem_core::{CmpOp, ReduceOp, ShmemConfig, ShmemWorld, TypedSym};

fn cfg(hosts: usize) -> ShmemConfig {
    ShmemConfig::fast_sim().with_hosts(hosts)
}

#[test]
fn classic_put_get_roundtrip_many_types() {
    ShmemWorld::run(cfg(2), |ctx| {
        let shmem = ctx.c_api();
        assert_eq!(shmem.shmem_n_pes(), 2);
        let me = shmem.shmem_my_pe();

        let longs = TypedSym::<i64>::new(shmem.shmem_malloc(8 * 4).unwrap(), 4).unwrap();
        let doubles = TypedSym::<f64>::new(shmem.shmem_malloc(8 * 2).unwrap(), 2).unwrap();
        let ints = TypedSym::<i32>::new(shmem.shmem_calloc(4, 4).unwrap(), 4).unwrap();

        if me == 0 {
            shmem.shmem_long_put(&longs, &[-1, -2, -3, -4], 1).unwrap();
            shmem.shmem_double_put(&doubles, &[1.5, -2.5], 1).unwrap();
            shmem.shmem_int_p(&ints, 77, 1).unwrap();
        }
        shmem.shmem_barrier_all().unwrap();
        if me == 1 {
            assert_eq!(shmem.shmem_long_get(&longs, 4, 1).unwrap(), vec![-1, -2, -3, -4]);
            assert_eq!(shmem.shmem_double_get(&doubles, 2, 1).unwrap(), vec![1.5, -2.5]);
            assert_eq!(shmem.shmem_int_g(&ints, 1).unwrap(), 77);
        }
        shmem.shmem_barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn classic_strided() {
    ShmemWorld::run(cfg(2), |ctx| {
        let shmem = ctx.c_api();
        let arr = TypedSym::<i32>::new(shmem.shmem_calloc(12, 4).unwrap(), 12).unwrap();
        if shmem.shmem_my_pe() == 0 {
            // Every element of src at stride 1, into target stride 3.
            shmem.shmem_int_iput(&arr, &[10, 20, 30, 40], 3, 1, 4, 1).unwrap();
        }
        shmem.shmem_barrier_all().unwrap();
        if shmem.shmem_my_pe() == 1 {
            let strided = shmem.shmem_int_iget(&arr, 3, 4, 1).unwrap();
            assert_eq!(strided, vec![10, 20, 30, 40]);
        }
        shmem.shmem_barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn classic_atomics_and_locks() {
    ShmemWorld::run(cfg(4), |ctx| {
        let shmem = ctx.c_api();
        let counter = TypedSym::<i64>::new(shmem.shmem_calloc(1, 8).unwrap(), 1).unwrap();
        let lock = ctx.lock_alloc().unwrap();

        for _ in 0..10 {
            shmem.shmem_long_atomic_inc(&counter, 0).unwrap();
        }
        let old = shmem.shmem_long_atomic_fetch_add(&counter, 0, 0).unwrap();
        assert!(old >= 10, "at least my own increments landed");
        shmem.shmem_barrier_all().unwrap();
        if shmem.shmem_my_pe() == 0 {
            assert_eq!(ctx.read_local::<i64>(&counter, 0).unwrap(), 40);
        }

        // Everyone contends for the lock (mutual exclusion exercised)...
        shmem.shmem_set_lock(&lock).unwrap();
        shmem.shmem_clear_lock(&lock).unwrap();
        shmem.shmem_barrier_all().unwrap();
        // ...but test_lock's success is only deterministic uncontended.
        if shmem.shmem_my_pe() == 2 {
            assert!(shmem.shmem_test_lock(&lock).unwrap());
            assert!(!shmem.shmem_test_lock(&lock).unwrap(), "second probe sees it held");
            shmem.shmem_clear_lock(&lock).unwrap();
        }
        shmem.shmem_barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn classic_reductions_and_collectives() {
    ShmemWorld::run(cfg(3), |ctx| {
        let shmem = ctx.c_api();
        let me = shmem.shmem_my_pe() as i64;
        assert_eq!(shmem.shmem_long_sum_to_all(&[me + 1]).unwrap(), vec![6]);
        assert_eq!(shmem.shmem_long_max_to_all(&[me]).unwrap(), vec![2]);
        assert_eq!(shmem.shmem_long_min_to_all(&[me]).unwrap(), vec![0]);
        assert_eq!(shmem.shmem_long_prod_to_all(&[me + 1]).unwrap(), vec![6]);
        assert_eq!(shmem.shmem_double_sum_to_all(&[0.5]).unwrap(), vec![1.5]);
        assert_eq!(shmem.shmem_reduce(ReduceOp::Max, &[me as f32]).unwrap(), vec![2.0]);

        let gathered = TypedSym::<i32>::new(shmem.shmem_malloc(3 * 4).unwrap(), 3).unwrap();
        shmem.shmem_fcollect(&gathered, &[me as i32 * 10]).unwrap();
        assert_eq!(ctx.read_local_slice::<i32>(&gathered, 0, 3).unwrap(), vec![0, 10, 20]);

        let bcast = TypedSym::<u64>::new(shmem.shmem_calloc(2, 8).unwrap(), 2).unwrap();
        if me == 1 {
            ctx.write_local_slice(&bcast, 0, &[111u64, 222]).unwrap();
        }
        shmem.shmem_broadcast(&bcast, 2, 1).unwrap();
        assert_eq!(ctx.read_local_slice::<u64>(&bcast, 0, 2).unwrap(), vec![111, 222]);
        shmem.shmem_barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn classic_wait_until_and_putmem() {
    ShmemWorld::run(cfg(2), |ctx| {
        let shmem = ctx.c_api();
        let bytes = TypedSym::<u8>::new(shmem.shmem_calloc(16, 1).unwrap(), 16).unwrap();
        let flag = TypedSym::<i64>::new(shmem.shmem_calloc(1, 8).unwrap(), 1).unwrap();
        if shmem.shmem_my_pe() == 0 {
            shmem.shmem_putmem(&bytes, b"classic putmem!!", 1).unwrap();
            shmem.shmem_quiet().expect("quiet");
            shmem.shmem_long_p(&flag, 1, 1).unwrap();
        } else {
            let v = shmem.shmem_wait_until(&flag, CmpOp::Eq, 1i64).unwrap();
            assert_eq!(v, 1);
            assert_eq!(ctx.read_local_slice::<u8>(&bytes, 0, 16).unwrap(), b"classic putmem!!");
            // getmem path too.
            assert_eq!(shmem.shmem_getmem(&bytes, 7, 1).unwrap(), b"classic");
        }
        shmem.shmem_barrier_all().unwrap();
    })
    .unwrap();
}
