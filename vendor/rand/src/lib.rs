//! Offline stand-in for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! a small, dependency-free implementation of the `rand` API surface it
//! actually calls:
//!
//! * [`rng()`] — a per-call "thread" RNG seeded from wall-clock entropy.
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — a deterministic,
//!   reproducible generator (xoshiro256++ seeded via SplitMix64).
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`].
//!
//! The generator is **not cryptographically secure** — it exists for test
//! workloads, examples, and the simulator's fault injection, all of which
//! need speed and reproducibility, not secrecy.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------

/// Source of raw random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw, which
    /// for xoshiro-family generators are the better-mixed bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a standard-distribution type: full-range
    /// integers, `bool`, or a float in `[0, 1)`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    /// Panics on an empty range, like the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of
    /// `state` — the reproducibility anchor for tests and fault plans.
    fn seed_from_u64(state: u64) -> Self;
}

// ---------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, the standard multiply
    /// construction.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // 128-bit widening multiply maps a 64-bit draw onto the
                // span with negligible bias for any span < 2^64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's deterministic generator: xoshiro256++ (Blackman &
/// Vigna), state expanded from the seed with SplitMix64. Not the same
/// algorithm as the real `StdRng` (ChaCha12) — streams differ from
/// upstream `rand`, but are stable for a given seed of *this* crate,
/// which is all the tests and fault plans rely on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Non-deterministic generator handed out by [`rng()`].
#[derive(Debug, Clone)]
pub struct ThreadRng(StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Return a generator seeded from ambient entropy (wall clock, a global
/// counter, and the thread id) — the moral equivalent of
/// `rand::rng()`.
pub fn rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    ThreadRng(StdRng::seed_from_u64(nanos ^ count.rotate_left(32) ^ tid))
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::{StdRng, ThreadRng};
}

/// The usual glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{StdRng, ThreadRng};
    pub use crate::{rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.random_range(0..1000u64);
            assert!(w < 1000);
            let x: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u8 = r.random_range(0..=255);
            let _ = y;
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values hit in 1000 draws");
    }

    #[test]
    fn floats_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability_roughly_honored() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits} far from 2500");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn thread_rng_distinct_calls_distinct_streams() {
        let mut a = rng();
        let mut b = rng();
        // Not a hard guarantee, but overwhelmingly likely.
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }
}
