//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the workspace vendors the *subset* of the
//! `parking_lot` API it actually uses as a thin wrapper over `std::sync`.
//! The semantic contract this shim preserves (and that the rest of the
//! workspace relies on):
//!
//! * `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards
//!   directly (no `Result`) and **never poison** — a panicking thread
//!   releases the lock and other threads proceed, exactly like the real
//!   `parking_lot`. The std poison error is swallowed via
//!   [`PoisonError::into_inner`].
//! * `Mutex::new` / `RwLock::new` / `Condvar::new` are `const fn`, so
//!   `static LOCK: Mutex<()> = Mutex::new(());` works.
//! * `Condvar::wait` takes `&mut MutexGuard` (not by value);
//!   `wait_until` / `wait_for` return a [`WaitTimeoutResult`] answering
//!   `timed_out()`.
//!
//! Fairness, eventual-fairness timeouts, `lock_api` generics, and the
//! `send_guard` features of the real crate are intentionally absent —
//! nothing in this workspace uses them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual exclusion primitive (no poisoning, guard-returning `lock`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can take
/// it by value (std's API) while the caller keeps holding `&mut` to this
/// wrapper, matching `parking_lot`'s in-place wait signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] / [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condvar — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, timed_out) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out }
    }

    /// Block until notified or `deadline` passes. If the deadline is
    /// already past, returns `timed_out() == true` without sleeping
    /// (matching `parking_lot`).
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter. Returns whether a thread *may* have been woken
    /// (std does not report this; `true` keeps call sites working).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters. The real crate returns the number woken; std
    /// cannot know it, so this returns 0 — no call site in this
    /// workspace reads it.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock (no poisoning, guard-returning accessors).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panic_without_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn static_const_init() {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
        // Guard still usable after the wait.
        *g = true;
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
            drop(done);
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
