//! Offline stand-in for the subset of `criterion` the benches use.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! a minimal benchmark harness with `criterion`'s API shape: benches keep
//! `harness = false` + `criterion_group!`/`criterion_main!`, and `cargo
//! bench` prints one mean-per-iteration line per benchmark.
//!
//! Measurement model: each benchmark runs batches of doubling iteration
//! counts until it has consumed a small wall-clock budget (default 200 ms,
//! override with `CRITERION_SHIM_BUDGET_MS`), then reports the mean. There
//! is no statistical analysis, outlier detection, or HTML report — for
//! regression comparisons, diff the printed means between runs.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from const-folding a benchmark input or sinking
/// a result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

// ---------------------------------------------------------------------
// Bencher
// ---------------------------------------------------------------------

/// Passed to each benchmark closure; records one timing measurement.
pub struct Bencher {
    budget: Duration,
    /// Total elapsed time and iteration count of the measurement.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { budget, measured: None }
    }

    /// Time `routine`, escalating the iteration count until the time
    /// budget is consumed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (not measured).
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters_done = 0u64;
        let mut batch = 1u64;
        while total < self.budget && iters_done < (1 << 24) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters_done += batch;
            batch = batch.saturating_mul(2);
        }
        self.measured = Some((total, iters_done.max(1)));
    }

    /// Like [`Criterion`]'s `iter_custom`: the routine receives an
    /// iteration count and returns the time those iterations took.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let first = routine(1);
        if first * 8 >= self.budget {
            self.measured = Some((first, 1));
            return;
        }
        // Cheap enough to average over a larger batch.
        let per = first.max(Duration::from_nanos(1));
        let n = (self.budget.as_nanos() / per.as_nanos()).clamp(1, 1 << 16) as u64;
        let total = routine(n);
        self.measured = Some((total, n));
    }

    fn mean(&self) -> Option<Duration> {
        self.measured.map(|(total, iters)| total / iters.max(1) as u32)
    }
}

// ---------------------------------------------------------------------
// Ids and throughput
// ---------------------------------------------------------------------

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

fn report(label: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
    match mean {
        Some(m) => {
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(b) => {
                    let mibps = b as f64 / m.as_secs_f64() / (1 << 20) as f64;
                    format!("  {mibps:.1} MiB/s")
                }
                Throughput::Elements(e) => {
                    let eps = e as f64 / m.as_secs_f64();
                    format!("  {eps:.0} elem/s")
                }
            });
            println!(
                "bench: {label:<50} {:>12}/iter{}",
                format_duration(m),
                rate.unwrap_or_default()
            );
        }
        None => println!("bench: {label:<50} (no measurement)"),
    }
}

// ---------------------------------------------------------------------
// Criterion + groups
// ---------------------------------------------------------------------

/// The top-level harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: budget() }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, b.mean(), None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), budget: self.budget, throughput: None, _parent: self }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's measurement budget is
    /// time-based, so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Report a rate alongside the mean for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean(), self.throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F, D>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        D: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean(), self.throughput);
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Define a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` from bench groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("x", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.bench_function(BenchmarkId::from_parameter(8), |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(8u64 * 2);
                }
                t0.elapsed()
            });
        });
        g.finish();
    }
}
