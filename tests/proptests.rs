#![allow(clippy::needless_range_loop)]

//! Property-based tests over the core invariants:
//! allocator determinism and non-overlap, frame-codec round-trips, ring
//! routing, and a randomized put/get workload checked against a flat
//! byte-array oracle.

use proptest::prelude::*;

use shmem_ntb::net::{hop_count, Frame, FrameKind, RingTopology};
use shmem_ntb::shmem::{ShmemConfig, ShmemWorld, SymmetricHeap, TransferMode};
use shmem_ntb::sim::HostMemory;

// ---------------------------------------------------------------------
// Symmetric heap allocator
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Malloc(u64),
    /// Free the i-th (mod live count) oldest live allocation.
    Free(usize),
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..200_000).prop_map(HeapOp::Malloc),
            (0usize..64).prop_map(HeapOp::Free),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Live allocations never overlap, and replaying the same script on a
    /// second heap yields identical offsets (the symmetric invariant).
    #[test]
    fn allocator_no_overlap_and_deterministic(ops in heap_ops()) {
        let h1 = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let h2 = SymmetricHeap::new(HostMemory::new(1, 1 << 30), 64 << 10);
        let mut live: Vec<shmem_ntb::shmem::SymAddr> = Vec::new();
        for op in &ops {
            match op {
                HeapOp::Malloc(size) => {
                    let a1 = h1.malloc(*size).unwrap();
                    let a2 = h2.malloc(*size).unwrap();
                    prop_assert_eq!(a1, a2, "replicas must agree");
                    // Non-overlap with every live allocation.
                    for b in &live {
                        let disjoint = a1.offset() + a1.len() <= b.offset()
                            || b.offset() + b.len() <= a1.offset();
                        prop_assert!(disjoint, "{a1:?} overlaps {b:?}");
                    }
                    live.push(a1);
                }
                HeapOp::Free(idx) => {
                    if !live.is_empty() {
                        let a = live.remove(idx % live.len());
                        h1.free(a).unwrap();
                        h2.free(a).unwrap();
                    }
                }
            }
        }
        // Accounting: live bytes equal the sum of live allocation lengths.
        let expect: u64 = live.iter().map(|a| a.len()).sum();
        prop_assert_eq!(h1.live_bytes(), expect);
        prop_assert_eq!(h1.live_allocations(), live.len());
    }

    /// Freeing everything lets a maximal allocation reuse offset 0
    /// (coalescing works and nothing leaks).
    #[test]
    fn allocator_full_coalesce(sizes in prop::collection::vec(1u64..50_000, 1..20)) {
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let allocs: Vec<_> = sizes.iter().map(|&s| h.malloc(s).unwrap()).collect();
        let total_cap = h.capacity();
        for a in allocs {
            h.free(a).unwrap();
        }
        prop_assert_eq!(h.live_bytes(), 0);
        let big = h.malloc(total_cap).unwrap();
        prop_assert_eq!(big.offset(), 0, "all space coalesced back into one range");
    }

    /// Data written across arbitrary chunk boundaries reads back intact.
    #[test]
    fn heap_flat_io_roundtrip(offset in 0u64..100_000, data in prop::collection::vec(any::<u8>(), 1..5000)) {
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 4096);
        let _ = h.malloc(offset + data.len() as u64).unwrap();
        h.write_flat(offset, &data).unwrap();
        prop_assert_eq!(h.read_flat_vec(offset, data.len() as u64).unwrap(), data);
    }
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0usize..=63,
        0usize..=63,
        any::<u16>(),
        0u32..(1 << 30),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        0usize..4,
    )
        .prop_map(|(src, dest, seq, len, offset, aux, memcpy, kind_sel)| {
            let mode = if memcpy { TransferMode::Memcpy } else { TransferMode::Dma };
            let mut f = match kind_sel {
                0 => Frame::put(src, dest, len, offset, mode),
                1 => Frame::get_req(src, dest, len, offset, aux, mode),
                2 => Frame::get_resp(src, dest, len, offset, aux, mode),
                _ => Frame::put_ack(src, dest, len),
            };
            f.seq = seq;
            f
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every frame survives the scratchpad encoding.
    #[test]
    fn frame_roundtrip(f in arb_frame()) {
        let decoded = Frame::decode(f.encode()).unwrap();
        prop_assert_eq!(decoded, f);
    }

    /// The header word is never zero (zero means "empty mailbox slot").
    #[test]
    fn frame_header_nonzero(f in arb_frame()) {
        prop_assert_ne!(f.encode()[0], 0);
    }

    /// AMO frames round-trip with opcode and mode intact.
    #[test]
    fn amo_frame_roundtrip(src in 0usize..=63, dest in 0usize..=63,
                           off in any::<u32>(), req in any::<u32>(), op_sel in 0usize..8) {
        let op = shmem_ntb::net::AmoOp::ALL[op_sel];
        let f = Frame::amo_req(src, dest, op, off, req);
        let d = Frame::decode(f.encode()).unwrap();
        prop_assert_eq!(d.amo_op, Some(op));
        prop_assert_eq!(d.kind, FrameKind::AmoReq);
        prop_assert_eq!(d.offset, off);
        prop_assert_eq!(d.aux, req);
    }
}

// ---------------------------------------------------------------------
// Ring routing
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Walking next_hop reaches the destination in exactly hop_count
    /// steps, and hop_count never exceeds half the ring.
    #[test]
    fn routing_reaches_destination(n in 2usize..=16, src in 0usize..16, dst in 0usize..16) {
        let src = src % n;
        let dst = dst % n;
        prop_assume!(src != dst);
        let hops = hop_count(src, dst, n);
        prop_assert!(hops <= n / 2);
        let mut cur = src;
        for _ in 0..hops {
            cur = RingTopology::new(cur, n).next_hop(dst);
        }
        prop_assert_eq!(cur, dst);
    }

    /// Hop count is symmetric.
    #[test]
    fn hop_count_symmetric(n in 1usize..=16, a in 0usize..16, b in 0usize..16) {
        let a = a % n;
        let b = b % n;
        prop_assert_eq!(hop_count(a, b, n), hop_count(b, a, n));
    }
}

// ---------------------------------------------------------------------
// Put/get against a flat oracle
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct XferOp {
    put: bool,
    pe: usize,
    offset: usize,
    len: usize,
    seed: u8,
    memcpy: bool,
}

fn xfer_ops() -> impl Strategy<Value = Vec<XferOp>> {
    prop::collection::vec(
        (any::<bool>(), 1usize..4, 0usize..3000, 1usize..2048, any::<u8>(), any::<bool>())
            .prop_map(|(put, pe, offset, len, seed, memcpy)| XferOp {
                put,
                pe,
                offset,
                len,
                seed,
                memcpy,
            }),
        1..25,
    )
}

proptest! {
    // Worlds are comparatively expensive; a handful of randomized scripts
    // with ~25 operations each still explores a lot of interleaving.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PE 0 drives a random put/get script against PEs 1..4; symmetric
    /// memory must always match a per-PE byte-array oracle.
    #[test]
    fn putget_matches_oracle(ops in xfer_ops()) {
        const REGION: usize = 8192;
        let cfg = ShmemConfig::fast_sim().with_hosts(4);
        let result = ShmemWorld::run(cfg, |ctx| {
            let sym = ctx.calloc_array::<u8>(REGION).unwrap();
            if ctx.my_pe() == 0 {
                let mut oracle = vec![vec![0u8; REGION]; ctx.num_pes()];
                for (i, op) in ops.iter().enumerate() {
                    let offset = op.offset.min(REGION - 1);
                    let len = op.len.min(REGION - offset);
                    let mode = if op.memcpy { TransferMode::Memcpy } else { TransferMode::Dma };
                    if op.put {
                        let data: Vec<u8> =
                            (0..len).map(|j| op.seed.wrapping_add(j as u8)).collect();
                        ctx.put_slice_with_mode(&sym, offset, &data, op.pe, mode).unwrap();
                        ctx.quiet();
                        oracle[op.pe][offset..offset + len].copy_from_slice(&data);
                    } else {
                        let got =
                            ctx.get_slice_with_mode::<u8>(&sym, offset, len, op.pe, mode).unwrap();
                        assert_eq!(got, &oracle[op.pe][offset..offset + len], "op {i}: {op:?}");
                    }
                }
                // Final sweep: every byte of every PE matches the oracle.
                for pe in 1..ctx.num_pes() {
                    let all = ctx.get_slice::<u8>(&sym, 0, REGION, pe).unwrap();
                    assert_eq!(all, oracle[pe], "final sweep PE {pe}");
                }
            }
            ctx.barrier_all().unwrap();
        });
        prop_assert!(result.is_ok());
    }
}

// ---------------------------------------------------------------------
// Aligned allocation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aligned allocations honor the alignment, stay disjoint from
    /// neighbours, and stay deterministic across replicas.
    #[test]
    fn aligned_allocator_deterministic(
        script in prop::collection::vec((1u64..50_000, 0u32..8), 1..20)
    ) {
        let h1 = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let h2 = SymmetricHeap::new(HostMemory::new(1, 1 << 30), 64 << 10);
        let mut live: Vec<shmem_ntb::shmem::SymAddr> = Vec::new();
        for (size, align_log) in script {
            let align = 16u64 << align_log;
            let a1 = h1.malloc_aligned(size, align).unwrap();
            let a2 = h2.malloc_aligned(size, align).unwrap();
            prop_assert_eq!(a1, a2, "replicas agree");
            prop_assert_eq!(a1.offset() % align, 0, "alignment honored");
            for b in &live {
                let disjoint = a1.offset() + a1.len() <= b.offset()
                    || b.offset() + b.len() <= a1.offset();
                prop_assert!(disjoint, "{a1:?} overlaps {b:?}");
            }
            live.push(a1);
        }
    }

    /// Alignment padding is reusable: freeing everything coalesces back
    /// to one hole even with mixed alignments.
    #[test]
    fn aligned_allocator_coalesces(
        script in prop::collection::vec((1u64..20_000, 0u32..6), 1..15)
    ) {
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let allocs: Vec<_> = script
            .iter()
            .map(|&(size, al)| h.malloc_aligned(size, 16 << al).unwrap())
            .collect();
        let cap = h.capacity();
        for a in allocs {
            h.free(a).unwrap();
        }
        prop_assert_eq!(h.live_bytes(), 0);
        let big = h.malloc(cap).unwrap();
        prop_assert_eq!(big.offset(), 0, "fully coalesced");
    }
}
