#![allow(clippy::needless_range_loop)]

//! Randomized property tests over the core invariants: allocator
//! determinism and non-overlap, frame-codec round-trips, ring routing,
//! and a randomized put/get workload checked against a flat byte-array
//! oracle.
//!
//! Historically these used the `proptest` crate; the offline build
//! environment cannot resolve it, so they are expressed as seeded
//! random-script loops over the vendored `rand` shim instead. Each test
//! runs a fixed number of independently seeded cases, and every failure
//! message carries the case seed so a failing script can be replayed by
//! pinning that seed.

use rand::prelude::*;

use shmem_ntb::net::{hop_count, Frame, FrameKind, RingTopology};
use shmem_ntb::shmem::{OpOptions, ShmemConfig, ShmemWorld, SymmetricHeap, TransferMode};
use shmem_ntb::sim::HostMemory;

/// Base seed for every test in this file; bump to explore new scripts.
const BASE_SEED: u64 = 0xB0BA_CAFE;

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(BASE_SEED ^ (test << 32) ^ case)
}

// ---------------------------------------------------------------------
// Symmetric heap allocator
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Malloc(u64),
    /// Free the i-th (mod live count) oldest live allocation.
    Free(usize),
}

fn heap_ops(rng: &mut StdRng) -> Vec<HeapOp> {
    let count = rng.random_range(1..60);
    (0..count)
        .map(|_| {
            if rng.random_bool(0.5) {
                HeapOp::Malloc(rng.random_range(1u64..200_000))
            } else {
                HeapOp::Free(rng.random_range(0usize..64))
            }
        })
        .collect()
}

/// Live allocations never overlap, and replaying the same script on a
/// second heap yields identical offsets (the symmetric invariant).
#[test]
fn allocator_no_overlap_and_deterministic() {
    for case in 0..64u64 {
        let mut rng = case_rng(1, case);
        let ops = heap_ops(&mut rng);
        let h1 = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let h2 = SymmetricHeap::new(HostMemory::new(1, 1 << 30), 64 << 10);
        let mut live: Vec<shmem_ntb::shmem::SymAddr> = Vec::new();
        for op in &ops {
            match op {
                HeapOp::Malloc(size) => {
                    let a1 = h1.malloc(*size).unwrap();
                    let a2 = h2.malloc(*size).unwrap();
                    assert_eq!(a1, a2, "case {case}: replicas must agree");
                    // Non-overlap with every live allocation.
                    for b in &live {
                        let disjoint = a1.offset() + a1.len() <= b.offset()
                            || b.offset() + b.len() <= a1.offset();
                        assert!(disjoint, "case {case}: {a1:?} overlaps {b:?}");
                    }
                    live.push(a1);
                }
                HeapOp::Free(idx) => {
                    if !live.is_empty() {
                        let a = live.remove(idx % live.len());
                        h1.free(a).unwrap();
                        h2.free(a).unwrap();
                    }
                }
            }
        }
        // Accounting: live bytes equal the sum of live allocation lengths.
        let expect: u64 = live.iter().map(|a| a.len()).sum();
        assert_eq!(h1.live_bytes(), expect, "case {case}");
        assert_eq!(h1.live_allocations(), live.len(), "case {case}");
    }
}

/// Freeing everything lets a maximal allocation reuse offset 0
/// (coalescing works and nothing leaks).
#[test]
fn allocator_full_coalesce() {
    for case in 0..64u64 {
        let mut rng = case_rng(2, case);
        let sizes: Vec<u64> =
            (0..rng.random_range(1..20)).map(|_| rng.random_range(1u64..50_000)).collect();
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let allocs: Vec<_> = sizes.iter().map(|&s| h.malloc(s).unwrap()).collect();
        let total_cap = h.capacity();
        for a in allocs {
            h.free(a).unwrap();
        }
        assert_eq!(h.live_bytes(), 0, "case {case}");
        let big = h.malloc(total_cap).unwrap();
        assert_eq!(big.offset(), 0, "case {case}: all space coalesced back into one range");
    }
}

/// Data written across arbitrary chunk boundaries reads back intact.
#[test]
fn heap_flat_io_roundtrip() {
    for case in 0..64u64 {
        let mut rng = case_rng(3, case);
        let offset = rng.random_range(0u64..100_000);
        let len = rng.random_range(1usize..5000);
        let data: Vec<u8> = (0..len).map(|_| rng.random()).collect();
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 4096);
        let _ = h.malloc(offset + data.len() as u64).unwrap();
        h.write_flat(offset, &data).unwrap();
        assert_eq!(h.read_flat_vec(offset, data.len() as u64).unwrap(), data, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

fn arb_frame(rng: &mut StdRng) -> Frame {
    let src = rng.random_range(0usize..=63);
    let dest = rng.random_range(0usize..=63);
    let seq: u16 = rng.random();
    let len = rng.random_range(0u32..(1 << 30));
    let offset: u32 = rng.random();
    let aux: u32 = rng.random();
    let mode = if rng.random_bool(0.5) { TransferMode::Memcpy } else { TransferMode::Dma };
    let mut f = match rng.random_range(0usize..4) {
        0 => Frame::put(src, dest, len, offset, aux, mode),
        1 => Frame::get_req(src, dest, len, offset, aux, mode),
        2 => Frame::get_resp(src, dest, len, offset, aux, mode),
        _ => Frame::put_ack(src, dest, len, aux),
    };
    f.seq = seq;
    f
}

/// Every frame survives the scratchpad encoding.
#[test]
fn frame_roundtrip() {
    for case in 0..256u64 {
        let mut rng = case_rng(4, case);
        let f = arb_frame(&mut rng);
        let decoded = Frame::decode(f.encode()).unwrap();
        assert_eq!(decoded, f, "case {case}");
    }
}

/// The header word is never zero (zero means "empty mailbox slot").
#[test]
fn frame_header_nonzero() {
    for case in 0..256u64 {
        let mut rng = case_rng(5, case);
        let f = arb_frame(&mut rng);
        assert_ne!(f.encode()[0], 0, "case {case}");
    }
}

/// AMO frames round-trip with opcode and mode intact.
#[test]
fn amo_frame_roundtrip() {
    for case in 0..256u64 {
        let mut rng = case_rng(6, case);
        let src = rng.random_range(0usize..=63);
        let dest = rng.random_range(0usize..=63);
        let off: u32 = rng.random();
        let req: u32 = rng.random();
        let op = shmem_ntb::net::AmoOp::ALL[rng.random_range(0usize..8)];
        let f = Frame::amo_req(src, dest, op, off, req);
        let d = Frame::decode(f.encode()).unwrap();
        assert_eq!(d.amo_op, Some(op), "case {case}");
        assert_eq!(d.kind, FrameKind::AmoReq, "case {case}");
        assert_eq!(d.offset, off, "case {case}");
        assert_eq!(d.aux, req, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Ring routing
// ---------------------------------------------------------------------

/// Walking next_hop reaches the destination in exactly hop_count steps,
/// and hop_count never exceeds half the ring.
#[test]
fn routing_reaches_destination() {
    for case in 0..256u64 {
        let mut rng = case_rng(7, case);
        let n = rng.random_range(2usize..=16);
        let src = rng.random_range(0usize..16) % n;
        let dst = rng.random_range(0usize..16) % n;
        if src == dst {
            continue;
        }
        let hops = hop_count(src, dst, n);
        assert!(hops <= n / 2, "case {case}");
        let mut cur = src;
        for _ in 0..hops {
            cur = RingTopology::new(cur, n).next_hop(dst);
        }
        assert_eq!(cur, dst, "case {case}");
    }
}

/// On every shape (ring, torus, clique) and random size, walking
/// `next_hop` from a random source reaches any destination in at most
/// `hops(src, dst)` steps — the chain follows shortest paths exactly,
/// so it can never loop or ping-pong.
#[test]
fn next_hop_chains_reach_dest_within_hops_on_all_shapes() {
    use shmem_ntb::net::{Shape, TopoGraph};
    for case in 0..192u64 {
        let mut rng = case_rng(13, case);
        let (shape, n) = match case % 3 {
            0 => (Shape::Ring, rng.random_range(2usize..=24)),
            1 => {
                let rows = rng.random_range(2usize..=6);
                let cols = rng.random_range(2usize..=8);
                (Shape::Torus { rows, cols }, rows * cols)
            }
            _ => (Shape::Clique, rng.random_range(2usize..=16)),
        };
        let graph = TopoGraph::new(shape, n);
        let src = rng.random_range(0usize..n);
        let dst = rng.random_range(0usize..n);
        let budget = graph.hops(src, dst);
        let mut cur = src;
        for step in 0..budget {
            assert_ne!(cur, dst, "case {case}: arrived early at step {step}");
            cur = graph.next_hop(cur, dst);
        }
        assert_eq!(cur, dst, "case {case}: {shape:?} n={n} {src}->{dst} not reached in {budget}");
    }
}

/// Hop count is symmetric.
#[test]
fn hop_count_symmetric() {
    for case in 0..256u64 {
        let mut rng = case_rng(8, case);
        let n = rng.random_range(1usize..=16);
        let a = rng.random_range(0usize..16) % n;
        let b = rng.random_range(0usize..16) % n;
        assert_eq!(hop_count(a, b, n), hop_count(b, a, n), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Put/get against a flat oracle
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct XferOp {
    put: bool,
    pe: usize,
    offset: usize,
    len: usize,
    seed: u8,
    memcpy: bool,
}

fn xfer_ops(rng: &mut StdRng) -> Vec<XferOp> {
    let count = rng.random_range(1..25);
    (0..count)
        .map(|_| XferOp {
            put: rng.random_bool(0.5),
            pe: rng.random_range(1usize..4),
            offset: rng.random_range(0usize..3000),
            len: rng.random_range(1usize..2048),
            seed: rng.random(),
            memcpy: rng.random_bool(0.5),
        })
        .collect()
}

/// PE 0 drives a random put/get script against PEs 1..4; symmetric
/// memory must always match a per-PE byte-array oracle.
///
/// Worlds are comparatively expensive; a handful of randomized scripts
/// with ~25 operations each still explores a lot of interleaving.
#[test]
fn putget_matches_oracle() {
    for case in 0..12u64 {
        let mut rng = case_rng(9, case);
        let ops = xfer_ops(&mut rng);
        const REGION: usize = 8192;
        let cfg = ShmemConfig::fast_sim().with_hosts(4);
        ShmemWorld::run(cfg, |ctx| {
            let sym = ctx.calloc_array::<u8>(REGION).unwrap();
            if ctx.my_pe() == 0 {
                let mut oracle = vec![vec![0u8; REGION]; ctx.num_pes()];
                for (i, op) in ops.iter().enumerate() {
                    let offset = op.offset.min(REGION - 1);
                    let len = op.len.min(REGION - offset);
                    let mode = if op.memcpy { TransferMode::Memcpy } else { TransferMode::Dma };
                    if op.put {
                        let data: Vec<u8> =
                            (0..len).map(|j| op.seed.wrapping_add(j as u8)).collect();
                        ctx.put_slice_opts(&sym, offset, &data, op.pe, OpOptions::new().mode(mode))
                            .unwrap();
                        ctx.quiet().unwrap();
                        oracle[op.pe][offset..offset + len].copy_from_slice(&data);
                    } else {
                        let got = ctx
                            .get_slice_opts::<u8>(
                                &sym,
                                offset,
                                len,
                                op.pe,
                                OpOptions::new().mode(mode),
                            )
                            .unwrap();
                        assert_eq!(
                            got,
                            &oracle[op.pe][offset..offset + len],
                            "case {case} op {i}: {op:?}"
                        );
                    }
                }
                // Final sweep: every byte of every PE matches the oracle.
                for pe in 1..ctx.num_pes() {
                    let all = ctx.get_slice::<u8>(&sym, 0, REGION, pe).unwrap();
                    assert_eq!(all, oracle[pe], "case {case} final sweep PE {pe}");
                }
            }
            ctx.barrier_all().unwrap();
        })
        .unwrap();
    }
}

// ---------------------------------------------------------------------
// Pipelined get tiling
// ---------------------------------------------------------------------

/// Random (size, chunk, window) points through the get pipeline: any
/// combination of sub-request size, window depth and per-op window
/// override must return exactly the written bytes, and the pipelined
/// result must be identical to the `window == 1` stop-and-wait oracle
/// over the same world.
#[test]
fn pipelined_get_tiling_matches_oracle() {
    const REGION: usize = 32 << 10;
    for case in 0..10u64 {
        let mut rng = case_rng(14, case);
        let chunk = 1u64 << rng.random_range(8u32..13); // 256 B .. 4 KiB sub-requests
        let window = rng.random_range(1usize..6);
        let offset = rng.random_range(0usize..REGION / 2);
        let len = rng.random_range(1usize..=(REGION - offset));
        let opts_window = rng.random_range(1usize..6);
        let pat_seed: u8 = rng.random();
        let cfg = ShmemConfig::fast_sim().with_hosts(2).with_get_pipeline(chunk, window);
        ShmemWorld::run(cfg, |ctx| {
            let sym = ctx.calloc_array::<u8>(REGION).unwrap();
            let pattern: Vec<u8> =
                (0..REGION).map(|i| (i as u8).wrapping_mul(31).wrapping_add(pat_seed)).collect();
            if ctx.my_pe() == 1 {
                ctx.write_local_slice(&sym, 0, &pattern).unwrap();
            }
            ctx.barrier_all().unwrap();
            if ctx.my_pe() == 0 {
                let expected = &pattern[offset..offset + len];
                let ctx_tag = format!("case {case}: chunk {chunk} window {window} len {len}");
                // The world-configured window.
                let got = ctx.get_slice::<u8>(&sym, offset, len, 1).unwrap();
                assert_eq!(got, expected, "{ctx_tag}: configured window");
                // A per-op window override.
                let got = ctx
                    .get_slice_opts::<u8>(
                        &sym,
                        offset,
                        len,
                        1,
                        OpOptions::new().get_window(opts_window),
                    )
                    .unwrap();
                assert_eq!(got, expected, "{ctx_tag}: op window {opts_window}");
                // window == 1 degenerates to stop-and-wait — the oracle.
                let got = ctx
                    .get_slice_opts::<u8>(&sym, offset, len, 1, OpOptions::new().get_window(1))
                    .unwrap();
                assert_eq!(got, expected, "{ctx_tag}: stop-and-wait oracle");
            }
            ctx.barrier_all().unwrap();
        })
        .unwrap();
    }
}

/// Strided gets ride the same pipeline via their covering-span
/// transfer: random (stride, count, chunk, window) points against a
/// locally computed oracle, with and without a per-op window override.
#[test]
fn strided_get_pipeline_matches_oracle() {
    const ELEMS: usize = 6000;
    for case in 0..10u64 {
        let mut rng = case_rng(15, case);
        let chunk = 1u64 << rng.random_range(8u32..12);
        let window = rng.random_range(1usize..5);
        let sst = rng.random_range(1usize..8);
        let nelems = rng.random_range(1usize..=(ELEMS / sst));
        let index = rng.random_range(0usize..=(ELEMS - 1 - (nelems - 1) * sst));
        let op_window = rng.random_range(1usize..5);
        let cfg = ShmemConfig::fast_sim().with_hosts(2).with_get_pipeline(chunk, window);
        ShmemWorld::run(cfg, |ctx| {
            let sym = ctx.calloc_array::<u64>(ELEMS).unwrap();
            let pattern: Vec<u64> = (0..ELEMS as u64)
                .map(|i| case.wrapping_mul(1_000_003) ^ i.wrapping_mul(2_654_435_761))
                .collect();
            if ctx.my_pe() == 1 {
                ctx.write_local_slice(&sym, 0, &pattern).unwrap();
            }
            ctx.barrier_all().unwrap();
            if ctx.my_pe() == 0 {
                let expected: Vec<u64> = (0..nelems).map(|i| pattern[index + i * sst]).collect();
                let tag = format!("case {case}: sst {sst} nelems {nelems} chunk {chunk}");
                let got = ctx.iget::<u64>(&sym, index, sst, nelems, 1).unwrap();
                assert_eq!(got, expected, "{tag}: iget");
                let got = ctx
                    .iget_opts::<u64>(
                        &sym,
                        index,
                        sst,
                        nelems,
                        1,
                        OpOptions::new().get_window(op_window),
                    )
                    .unwrap();
                assert_eq!(got, expected, "{tag}: iget_opts window {op_window}");
            }
            ctx.barrier_all().unwrap();
        })
        .unwrap();
    }
}

// ---------------------------------------------------------------------
// Aligned allocation
// ---------------------------------------------------------------------

/// Aligned allocations honor the alignment, stay disjoint from
/// neighbours, and stay deterministic across replicas.
#[test]
fn aligned_allocator_deterministic() {
    for case in 0..64u64 {
        let mut rng = case_rng(10, case);
        let script: Vec<(u64, u32)> = (0..rng.random_range(1..20))
            .map(|_| (rng.random_range(1u64..50_000), rng.random_range(0u32..8)))
            .collect();
        let h1 = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let h2 = SymmetricHeap::new(HostMemory::new(1, 1 << 30), 64 << 10);
        let mut live: Vec<shmem_ntb::shmem::SymAddr> = Vec::new();
        for (size, align_log) in script {
            let align = 16u64 << align_log;
            let a1 = h1.malloc_aligned(size, align).unwrap();
            let a2 = h2.malloc_aligned(size, align).unwrap();
            assert_eq!(a1, a2, "case {case}: replicas agree");
            assert_eq!(a1.offset() % align, 0, "case {case}: alignment honored");
            for b in &live {
                let disjoint =
                    a1.offset() + a1.len() <= b.offset() || b.offset() + b.len() <= a1.offset();
                assert!(disjoint, "case {case}: {a1:?} overlaps {b:?}");
            }
            live.push(a1);
        }
    }
}

/// The heap grows in exact `chunk_size` steps, only when an allocation
/// does not fit, and replicas running the same script grow identically
/// (a diverging segment count would break symmetric addressing).
#[test]
fn allocator_chunk_growth_is_minimal_and_deterministic() {
    for case in 0..64u64 {
        let mut rng = case_rng(12, case);
        let chunk = 4096u64 << rng.random_range(0u32..5);
        let h1 = SymmetricHeap::new(HostMemory::new(0, 1 << 30), chunk);
        let h2 = SymmetricHeap::new(HostMemory::new(1, 1 << 30), chunk);
        assert_eq!(h1.segment_count(), 0, "case {case}: heaps start empty");
        for _ in 0..rng.random_range(1..30) {
            let size = rng.random_range(1u64..3 * chunk);
            let before = h1.capacity();
            let a1 = h1.malloc(size).unwrap();
            let a2 = h2.malloc(size).unwrap();
            assert_eq!(a1, a2, "case {case}: replicas agree");
            let after = h1.capacity();
            assert_eq!(after % chunk, 0, "case {case}: capacity is whole chunks");
            assert_eq!(
                after,
                h1.segment_count() as u64 * chunk,
                "case {case}: capacity matches the segment count"
            );
            assert_eq!(h1.segment_count(), h2.segment_count(), "case {case}: replicas grew alike");
            if after > before {
                // Growth is minimal: one fewer chunk would not have held
                // the end of this allocation.
                assert!(
                    a1.offset() + a1.len() > after - chunk,
                    "case {case}: grew to {after} but allocation ends at {}",
                    a1.offset() + a1.len()
                );
            } else {
                assert!(
                    a1.offset() + a1.len() <= before,
                    "case {case}: no growth, so the allocation must fit the old capacity"
                );
            }
        }
    }
}

/// Free-list reuse: replaying an allocation script after freeing
/// everything reproduces the exact offsets without growing the heap,
/// and interleaved reuse never hands out bytes that overlap a live
/// allocation.
#[test]
fn allocator_reuses_freed_space_without_overlap() {
    for case in 0..64u64 {
        let mut rng = case_rng(13, case);
        let sizes: Vec<u64> =
            (0..rng.random_range(2..25)).map(|_| rng.random_range(1u64..100_000)).collect();
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);

        // Pass 1: allocate the script, remember the layout, free it all.
        let first: Vec<_> = sizes.iter().map(|&s| h.malloc(s).unwrap()).collect();
        let grown = h.capacity();
        for a in &first {
            h.free(*a).unwrap();
        }
        assert_eq!(h.live_bytes(), 0, "case {case}");

        // Pass 2: the same script fits entirely in reused space.
        let second: Vec<_> = sizes.iter().map(|&s| h.malloc(s).unwrap()).collect();
        assert_eq!(first, second, "case {case}: freed space is reused at the same offsets");
        assert_eq!(h.capacity(), grown, "case {case}: reuse must not grow the heap");

        // Pass 3: free a random subset, then allocate into the holes —
        // nothing handed out may overlap what is still live.
        let mut live = second;
        for _ in 0..sizes.len() {
            if rng.random_bool(0.5) && !live.is_empty() {
                let victim = live.remove(rng.random_range(0usize..live.len()));
                h.free(victim).unwrap();
            } else {
                let a = h.malloc(rng.random_range(1u64..50_000)).unwrap();
                for b in &live {
                    let disjoint =
                        a.offset() + a.len() <= b.offset() || b.offset() + b.len() <= a.offset();
                    assert!(disjoint, "case {case}: reused {a:?} overlaps live {b:?}");
                }
                live.push(a);
            }
        }
        let expect: u64 = live.iter().map(|a| a.len()).sum();
        assert_eq!(h.live_bytes(), expect, "case {case}: accounting survives reuse");
    }
}

/// Alignment padding is reusable: freeing everything coalesces back to
/// one hole even with mixed alignments.
#[test]
fn aligned_allocator_coalesces() {
    for case in 0..64u64 {
        let mut rng = case_rng(11, case);
        let script: Vec<(u64, u32)> = (0..rng.random_range(1..15))
            .map(|_| (rng.random_range(1u64..20_000), rng.random_range(0u32..6)))
            .collect();
        let h = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 64 << 10);
        let allocs: Vec<_> =
            script.iter().map(|&(size, al)| h.malloc_aligned(size, 16 << al).unwrap()).collect();
        let cap = h.capacity();
        for a in allocs {
            h.free(a).unwrap();
        }
        assert_eq!(h.live_bytes(), 0, "case {case}");
        let big = h.malloc(cap).unwrap();
        assert_eq!(big.offset(), 0, "case {case}: fully coalesced");
    }
}
