//! Whole-PE failure chaos matrix: crash, freeze and rejoin injected
//! into a live 5-PE SHMEM world while background doorbell-drop noise
//! keeps the retransmission machinery honest.
//!
//! Each cell runs the full stack — heartbeat failure detector, gossiped
//! membership epochs, ring healing around the dead hop, degraded
//! collectives and the crash-restart rejoin handshake — and certifies
//! the recorded event trace with the protocol-invariant checker
//! (`shmem_ntb::net::check`), including the failure-specific invariants
//! (dead-PE transmit discipline, membership-epoch monotonicity). A
//! violation dumps the rendered trace to `target/trace-dumps/<label>.txt`
//! before panicking, mirroring the link-chaos suite.
//!
//! The cells assert the acceptance behaviour of DESIGN.md §13:
//!
//! * **crash-during-barrier** — survivors stalled in a barrier against a
//!   crashed neighbour fail with the typed `PeFailed` (or complete
//!   degraded) well under the barrier timeout, then converge on the
//!   degraded dissemination barrier and keep exchanging data around the
//!   dead hop.
//! * **crash-mid-get** — a get hammering a crashed PE surfaces the typed
//!   `PeFailed` instead of hanging, while the other survivors' traffic
//!   is untouched.
//! * **freeze-then-thaw** — a hung host is (correctly) declared dead,
//!   but the thawed host's resuming beats bring membership back to full
//!   strength with its crash flag clear: no false permanent eviction.
//! * **rejoin** — a crashed host restarts, re-enters at the ring's
//!   current epoch, and byte-exact puts/gets flow both ways again.
//!
//! Every cell runs under two seeds; the seed drives the background
//! data-doorbell drop noise layered on top of the deterministic,
//! self-inflicted node fault.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shmem_ntb::net::{check, HeartbeatConfig, RetryPolicy, Topology};
use shmem_ntb::shmem::{
    BarrierAlgorithm, CmpOp, DegradedPolicy, ShmemConfig, ShmemError, ShmemWorld,
};
use shmem_ntb::sim::{render_events, EventLog, FaultPlan};

const HOSTS: usize = 5;
/// The PE that dies in every cell — mid-ring, so survivor traffic
/// between its neighbours must heal around the dead hop.
const VICTIM: usize = 2;

/// Generous outer limit; every cell asserts resolution far sooner.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(20);
/// How long the victim lets heartbeats flow before injecting its fault.
/// The detector deliberately ignores boot-time silence (a peer that has
/// never published a beat is not countable as missing), so the fault
/// must land on a *warmed-up* ring — several beat periods past start.
const BEAT_WARMUP: Duration = Duration::from_millis(100);
/// "Well under the barrier timeout": failures must surface this fast.
const PROMPT: Duration = Duration::from_secs(8);

fn retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(40),
        max_retries: 8,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 3,
    }
}

/// Seeded background noise on the data doorbells only (control sweeps
/// stay lossless, as the transport requires).
fn noise(seed: u64) -> FaultPlan {
    FaultPlan::none().with_seed(seed).with_doorbell_drop(0.01)
}

fn crash_cfg(seed: u64, policy: DegradedPolicy) -> ShmemConfig {
    ShmemConfig::builder()
        .hosts(HOSTS)
        .heartbeat(HeartbeatConfig::fast())
        .degraded_policy(policy)
        .barrier_timeout(BARRIER_TIMEOUT)
        .retry(retry())
        .faults(noise(seed))
        .build()
}

/// Run the trace through the invariant checker; on violation, dump the
/// rendered report plus the full trace to `target/trace-dumps/` and
/// panic with the artifact path.
fn certify(label: &str, log: &Arc<EventLog>) {
    certify_pes(label, log, HOSTS);
}

/// [`certify`] for an arbitrary world size; returns the clean report so
/// callers can assert evidence floors on what was actually checked.
fn certify_pes(label: &str, log: &Arc<EventLog>, pes: usize) -> shmem_ntb::net::CheckReport {
    let events = log.take();
    assert_eq!(log.dropped(), 0, "{label}: trace ring buffer wrapped; raise the capacity");
    let report = check(&events, pes);
    if report.is_clean() {
        return report;
    }
    let dir = PathBuf::from("target/trace-dumps");
    std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
    let path = dir.join(format!("{label}.txt"));
    let body = format!(
        "{} violation(s) in {} events\n\n{}\nfull trace:\n{}",
        report.violations.len(),
        events.len(),
        report.render_violations(),
        render_events(&events),
    );
    std::fs::write(&path, body).expect("write trace dump");
    panic!(
        "{label}: {} protocol-invariant violation(s); trace dump at {}",
        report.violations.len(),
        path.display()
    );
}

/// Spin until `cond` holds, panicking with `what` after [`PROMPT`].
fn await_membership(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + PROMPT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Survivors enter the same barrier the dead PE abandoned; each retries
/// until the degraded dissemination barrier over the live set converges.
fn barrier_until_degraded_ok(ctx: &shmem_ntb::shmem::ShmemCtx) {
    let deadline = Instant::now() + PROMPT;
    loop {
        match ctx.barrier_all() {
            Ok(()) => return,
            Err(ShmemError::PeFailed { pe, .. }) => {
                assert_eq!(pe, VICTIM, "only the victim may be reported dead");
                assert!(Instant::now() < deadline, "degraded barrier never converged");
            }
            Err(e) => panic!("unexpected barrier error: {e}"),
        }
    }
}

/// Cell: the victim crashes while the survivors head into a barrier.
/// Their stalled attempt must resolve promptly (typed `PeFailed`, or a
/// degraded completion if the detector won the race), after which the
/// degraded barrier and ring-healed puts/gets keep working.
fn run_crash_during_barrier(seed: u64) {
    let cfg = crash_cfg(seed, DegradedPolicy::Degrade);
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let me = ctx.my_pe();
        let sym = ctx.malloc_array::<u64>(HOSTS).expect("alloc");
        for i in 0..HOSTS {
            ctx.write_local(&sym, i, 0).expect("zero");
        }
        ctx.barrier_all().expect("healthy barrier");

        if me == VICTIM {
            ctx.quiet().expect("pre-crash quiet");
            // The survivors are already stalling inside their next
            // barrier by the time the warmed-up victim dies.
            std::thread::sleep(BEAT_WARMUP);
            ctx.node().crash();
            return Arc::clone(log);
        }

        // The victim is crashing concurrently; this attempt stalls
        // against the dead neighbour until the detector confirms.
        let t0 = Instant::now();
        let first = ctx.barrier_all();
        assert!(
            t0.elapsed() < PROMPT,
            "pe {me}: stalled barrier took {:?}, well over the detection floor",
            t0.elapsed()
        );
        match first {
            // The detector beat us to the entry check: degraded completion.
            Ok(()) => {}
            Err(ShmemError::PeFailed { pe, .. }) => {
                assert_eq!(pe, VICTIM, "pe {me}: wrong PE reported dead");
                barrier_until_degraded_ok(ctx);
            }
            Err(e) => panic!("pe {me}: expected PeFailed, got {e}"),
        }

        // Survivor traffic around the dead hop: each puts to the next
        // live PE (1 -> 3 must heal around the crashed PE 2).
        let live: Vec<usize> = (0..HOSTS).filter(|&p| p != VICTIM).collect();
        let rank = live.iter().position(|&p| p == me).expect("survivor rank");
        let next = live[(rank + 1) % live.len()];
        let prev = live[(rank + live.len() - 1) % live.len()];
        ctx.put(&sym, me, 100 + me as u64, next).expect("survivor put");
        ctx.quiet().expect("survivor quiet");
        let got = ctx.wait_until(&sym, prev, CmpOp::Eq, 100 + prev as u64).expect("survivor data");
        assert_eq!(got, 100 + prev as u64);

        // One more aligned degraded barrier closes the round; the final
        // quiet drains the barrier's own flag-put acks so the certified
        // trace is quiescent.
        ctx.barrier_all().expect("closing degraded barrier");
        ctx.quiet().expect("final quiet");
        assert!(!ctx.is_pe_live(VICTIM), "victim must stay evicted");
        assert_eq!(ctx.live_pes(), live);
        assert!(ctx.membership_epoch() >= 1, "eviction must bump the epoch");
        Arc::clone(log)
    })
    .expect("world");
    certify(&format!("crash-during-barrier-{seed}"), &results[0]);
}

/// Cell: a survivor hammers gets at the victim across the crash. The
/// loop must surface the *typed* `PeFailed` — not hang, not stay stuck
/// on anonymous transport errors — while the remaining survivors'
/// unrelated traffic completes untouched.
fn run_crash_mid_get(seed: u64) {
    const DATA: usize = 4096;
    let cfg = crash_cfg(seed, DegradedPolicy::Degrade);
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let me = ctx.my_pe();
        let sym = ctx.malloc_array::<u64>(DATA + HOSTS).expect("alloc");
        let pattern: Vec<u64> = (0..DATA as u64).map(|i| seed.wrapping_mul(1000) + i).collect();
        if me == VICTIM {
            ctx.write_local_slice(&sym, 0, &pattern).expect("seed pattern");
        }
        for i in 0..HOSTS {
            ctx.write_local(&sym, DATA + i, 0).expect("zero flag");
        }
        ctx.barrier_all().expect("healthy barrier");

        if me == VICTIM {
            std::thread::sleep(BEAT_WARMUP);
            ctx.node().crash();
            return Arc::clone(log);
        }

        if me == 1 {
            // Gets in flight across the crash: before confirmation they
            // may fail with transport-level errors (or even complete);
            // once this node declares the victim dead the typed error
            // must take over.
            let deadline = Instant::now() + PROMPT;
            let mut typed = false;
            while Instant::now() < deadline {
                match ctx.get_slice::<u64>(&sym, 0, DATA, VICTIM) {
                    Ok(d) => assert_eq!(d, pattern, "pre-crash get must be byte-exact"),
                    Err(ShmemError::PeFailed { pe, .. }) => {
                        assert_eq!(pe, VICTIM);
                        typed = true;
                        break;
                    }
                    Err(_) => {} // transport error in the confirmation window
                }
            }
            assert!(typed, "get against a crashed PE must fail with the typed PeFailed");
        } else {
            // The other survivors' traffic never touches the dead hop
            // and must be oblivious to the crash.
            let peers: Vec<usize> = (0..HOSTS).filter(|&p| p != VICTIM && p != 1).collect();
            let rank = peers.iter().position(|&p| p == me).expect("peer rank");
            let next = peers[(rank + 1) % peers.len()];
            let prev = peers[(rank + peers.len() - 1) % peers.len()];
            ctx.put(&sym, DATA + me, 500 + me as u64, next).expect("bystander put");
            ctx.quiet().expect("bystander quiet");
            let got = ctx
                .wait_until(&sym, DATA + prev, CmpOp::Eq, 500 + prev as u64)
                .expect("bystander data");
            assert_eq!(got, 500 + prev as u64);
        }

        barrier_until_degraded_ok(ctx);
        ctx.quiet().expect("final quiet");
        assert_eq!(ctx.live_pes(), vec![0, 1, 3, 4]);
        Arc::clone(log)
    })
    .expect("world");
    certify(&format!("crash-mid-get-{seed}"), &results[0]);
}

/// Cell: the victim hangs (frozen ports) long past the detection floor,
/// is declared dead, then thaws. Its resuming beats must bring every
/// survivor's membership back to full strength — thaw is a rejoin with
/// the crash flag clear, never a permanent eviction — and traffic to
/// the thawed host must be byte-exact again.
fn run_freeze_then_thaw(seed: u64) {
    const DATA: usize = 32;
    let cfg = crash_cfg(seed, DegradedPolicy::Degrade);
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let me = ctx.my_pe();
        let sym = ctx.malloc_array::<u64>(2 * DATA + 2).expect("alloc");
        let mine: Vec<u64> = (0..DATA as u64).map(|i| me as u64 * 10_000 + i).collect();
        ctx.write_local_slice(&sym, 0, &mine).expect("seed pattern");
        ctx.write_local(&sym, 2 * DATA, 0).expect("zero flag");
        ctx.write_local(&sym, 2 * DATA + 1, 0).expect("zero ack");
        ctx.barrier_all().expect("healthy barrier");

        if me == VICTIM {
            // Hang well past the detection floor (~120ms at fast()
            // timings), then resume. The closure thread itself keeps
            // running — only the host's ports stall, exactly like a
            // wedged machine.
            std::thread::sleep(BEAT_WARMUP);
            ctx.node().freeze();
            std::thread::sleep(Duration::from_millis(500));
            ctx.node().thaw();
            // Wait for PE 1's flag; by then membership healed.
            ctx.wait_until(&sym, 2 * DATA, CmpOp::Eq, 1).expect("post-thaw flag");
            let delivered = ctx.read_local_slice(&sym, DATA, DATA).expect("read delivered");
            let expect: Vec<u64> = (0..DATA as u64).map(|i| 10_000 + i).collect();
            assert_eq!(delivered, expect, "post-thaw put must be byte-exact");
            let fetched = ctx.get_slice::<u64>(&sym, 0, DATA, 1).expect("post-thaw get");
            assert_eq!(fetched, expect, "post-thaw get must be byte-exact");
            ctx.put(&sym, 2 * DATA + 1, 2, 1).expect("ack");
            ctx.quiet().expect("post-thaw quiet");
            return Arc::clone(log);
        }

        // Every survivor watches the eviction land, then heal.
        await_membership("victim eviction", || !ctx.is_pe_live(VICTIM));
        await_membership("victim return", || ctx.is_pe_live(VICTIM));
        assert_eq!(ctx.live_pes(), (0..HOSTS).collect::<Vec<_>>());
        let view = ctx.node().membership().view();
        assert_eq!(
            view.crash_flags & (1 << VICTIM),
            0,
            "a thawed host rejoins with its crash flag clear (no state purge)"
        );

        if me == 1 {
            let data = ctx.read_local_slice(&sym, 0, DATA).expect("read own");
            ctx.put_slice(&sym, DATA, &data, VICTIM).expect("put to thawed host");
            ctx.quiet().expect("quiet");
            ctx.put(&sym, 2 * DATA, 1, VICTIM).expect("flag");
            let ack = ctx.wait_until(&sym, 2 * DATA + 1, CmpOp::Eq, 2).expect("ack");
            assert_eq!(ack, 2);
            ctx.quiet().expect("final quiet");
        }
        Arc::clone(log)
    })
    .expect("world");
    certify(&format!("freeze-then-thaw-{seed}"), &results[0]);
}

/// Cell (strict `Fail` policy): the victim crashes and restarts. While
/// it is dead, a survivor barrier fails with the typed `PeFailed`
/// (degraded collectives refused under the strict policy); after
/// `restart` the victim re-enters at the ring's advanced epoch and
/// byte-exact puts/gets flow both ways.
fn run_rejoin_after_crash(seed: u64) {
    const DATA: usize = 64;
    let cfg = crash_cfg(seed, DegradedPolicy::Fail);
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let me = ctx.my_pe();
        let sym = ctx.malloc_array::<u64>(2 * DATA + 2).expect("alloc");
        let survivor_data: Vec<u64> = (0..DATA as u64).map(|i| seed.wrapping_mul(7) + i).collect();
        if me == 1 {
            ctx.write_local_slice(&sym, DATA, &survivor_data).expect("seed pattern");
        }
        ctx.write_local(&sym, 2 * DATA, 0).expect("zero flag");
        ctx.write_local(&sym, 2 * DATA + 1, 0).expect("zero ack");
        ctx.barrier_all().expect("healthy barrier");

        if me == VICTIM {
            ctx.quiet().expect("pre-crash quiet");
            std::thread::sleep(BEAT_WARMUP);
            ctx.node().crash();
            // Stay dead long enough for the survivors to observe the
            // eviction and assert the strict-policy barrier refusal.
            std::thread::sleep(Duration::from_millis(1500));
            let epoch_before = ctx.membership_epoch();
            ctx.node().restart(PROMPT).expect("rejoin handshake");
            assert!(ctx.is_pe_live(me), "restarted PE must count itself live");
            assert!(
                ctx.membership_epoch() > epoch_before,
                "rejoin must land at the ring's advanced epoch"
            );
            // Byte-exact traffic at the new epoch (no barriers: the
            // restarted PE's barrier state died with it).
            ctx.wait_until(&sym, 2 * DATA, CmpOp::Eq, 1).expect("post-rejoin flag");
            let delivered = ctx.read_local_slice(&sym, 0, DATA).expect("read delivered");
            assert_eq!(delivered, survivor_data, "post-rejoin put must be byte-exact");
            let fetched = ctx.get_slice::<u64>(&sym, DATA, DATA, 1).expect("post-rejoin get");
            assert_eq!(fetched, survivor_data, "post-rejoin get must be byte-exact");
            ctx.put(&sym, 2 * DATA + 1, 2, 1).expect("ack");
            ctx.quiet().expect("post-rejoin quiet");
            return Arc::clone(log);
        }

        await_membership("victim eviction", || !ctx.is_pe_live(VICTIM));
        // Under the strict policy a degraded barrier is refused with the
        // typed error. (Guard on liveness: if the victim already
        // rejoined — it stays dead for 1.5s, so this is theoretical —
        // the refusal no longer applies.)
        if !ctx.is_pe_live(VICTIM) {
            match ctx.barrier_all() {
                Err(ShmemError::PeFailed { pe, epoch }) => {
                    assert_eq!(pe, VICTIM);
                    assert!(epoch >= 1);
                }
                Ok(()) => panic!("pe {me}: strict policy must refuse a degraded barrier"),
                Err(e) => panic!("pe {me}: expected PeFailed, got {e}"),
            }
        }
        await_membership("victim rejoin", || ctx.is_pe_live(VICTIM));
        assert_eq!(ctx.live_pes(), (0..HOSTS).collect::<Vec<_>>());

        if me == 1 {
            ctx.put_slice(&sym, 0, &survivor_data, VICTIM).expect("put to rejoined host");
            ctx.quiet().expect("quiet");
            ctx.put(&sym, 2 * DATA, 1, VICTIM).expect("flag");
            let ack = ctx.wait_until(&sym, 2 * DATA + 1, CmpOp::Eq, 2).expect("ack");
            assert_eq!(ack, 2);
            ctx.quiet().expect("final quiet");
        }
        Arc::clone(log)
    })
    .expect("world");
    certify(&format!("rejoin-after-crash-{seed}"), &results[0]);
}

// ---------------------------------------------------------------------------
// Torus crash: the victim dies inside a 16-PE dissemination barrier on a
// 4x4 torus. Unlike the ring cells above, barrier flags here are *routed*
// puts (partner distance 2^k crosses multiple links), so the crash lands
// on in-flight forwarded traffic and the degraded barrier must converge
// over the live set with dead-node-aware routing.
// ---------------------------------------------------------------------------

const TORUS_PES: usize = 16;
/// Mid-grid victim (row 1, col 1): four live torus neighbours, so every
/// routed path past it has a detour to heal onto.
const TORUS_VICTIM: usize = 5;
/// Detection + degraded convergence budget for the 16-PE world; wider
/// than [`PROMPT`] because sixteen hosts' service threads share the
/// harness machine, but still a quarter of [`BARRIER_TIMEOUT`].
const TORUS_PROMPT: Duration = Duration::from_secs(10);

fn torus_crash_cfg(seed: u64) -> ShmemConfig {
    ShmemConfig::builder()
        .hosts(TORUS_PES)
        .topology(Topology::torus(4, 4))
        .barrier_algorithm(BarrierAlgorithm::Dissemination)
        .heartbeat(HeartbeatConfig::fast())
        .degraded_policy(DegradedPolicy::Degrade)
        .barrier_timeout(BARRIER_TIMEOUT)
        .retry(retry())
        .faults(noise(seed))
        .build()
}

/// Cell: crash during a dissemination barrier at 16 PEs on the torus.
/// The survivors' stalled round must resolve promptly (typed `PeFailed`
/// naming the victim, or a degraded completion), the degraded barrier
/// must converge over the 15 live PEs, and survivor put/get traffic must
/// route around the dead cell. The certified trace carries evidence
/// floors: barrier epochs, routed survivor puts and a membership
/// eviction must all have actually been checked.
fn run_crash_during_dissemination_barrier(seed: u64) {
    let cfg = torus_crash_cfg(seed);
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let me = ctx.my_pe();
        let sym = ctx.malloc_array::<u64>(TORUS_PES).expect("alloc");
        for i in 0..TORUS_PES {
            ctx.write_local(&sym, i, 0).expect("zero");
        }
        ctx.barrier_all().expect("healthy dissemination barrier");

        if me == TORUS_VICTIM {
            ctx.quiet().expect("pre-crash quiet");
            // The survivors are already stalling inside their next
            // barrier rounds by the time the warmed-up victim dies.
            std::thread::sleep(BEAT_WARMUP);
            ctx.node().crash();
            return Arc::clone(log);
        }

        let t0 = Instant::now();
        let first = ctx.barrier_all();
        assert!(
            t0.elapsed() < TORUS_PROMPT,
            "pe {me}: stalled dissemination barrier took {:?}",
            t0.elapsed()
        );
        match first {
            // The detector beat us to the entry check: degraded completion.
            Ok(()) => {}
            Err(ShmemError::PeFailed { pe, .. }) => {
                assert_eq!(pe, TORUS_VICTIM, "pe {me}: wrong PE reported dead");
                let deadline = Instant::now() + TORUS_PROMPT;
                loop {
                    match ctx.barrier_all() {
                        Ok(()) => break,
                        Err(ShmemError::PeFailed { pe, .. }) => {
                            assert_eq!(pe, TORUS_VICTIM, "pe {me}: wrong PE reported dead");
                            assert!(
                                Instant::now() < deadline,
                                "pe {me}: degraded dissemination barrier never converged"
                            );
                        }
                        Err(e) => panic!("pe {me}: unexpected barrier error: {e}"),
                    }
                }
            }
            Err(e) => panic!("pe {me}: expected PeFailed, got {e}"),
        }

        // Survivor traffic around the dead cell: each puts to the next
        // live PE in rank order, so PEs 4 and 6 (the victim's row
        // neighbours) exchange through a healed route.
        let live: Vec<usize> = (0..TORUS_PES).filter(|&p| p != TORUS_VICTIM).collect();
        let rank = live.iter().position(|&p| p == me).expect("survivor rank");
        let next = live[(rank + 1) % live.len()];
        let prev = live[(rank + live.len() - 1) % live.len()];
        ctx.put(&sym, me, 200 + me as u64, next).expect("survivor put");
        ctx.quiet().expect("survivor quiet");
        let got = ctx.wait_until(&sym, prev, CmpOp::Eq, 200 + prev as u64).expect("survivor data");
        assert_eq!(got, 200 + prev as u64);

        // One more aligned degraded barrier closes the round; the final
        // quiet drains the barrier's own flag-put acks so the certified
        // trace is quiescent.
        ctx.barrier_all().expect("closing degraded barrier");
        ctx.quiet().expect("final quiet");
        assert!(!ctx.is_pe_live(TORUS_VICTIM), "victim must stay evicted");
        assert_eq!(ctx.live_pes(), live);
        assert!(ctx.membership_epoch() >= 1, "eviction must bump the epoch");
        Arc::clone(log)
    })
    .expect("world");
    let label = format!("crash-during-dissemination-barrier-{seed}");
    let report = certify_pes(&label, &results[0], TORUS_PES);
    // Evidence floors: a clean verdict on an empty trace proves nothing.
    assert!(report.barriers_checked >= 1, "{label}: no barrier epochs certified");
    assert!(
        report.puts_checked >= TORUS_PES - 1,
        "{label}: only {} put chunks certified, need >= {}",
        report.puts_checked,
        TORUS_PES - 1
    );
    assert!(
        report.membership_updates_checked >= 1,
        "{label}: the eviction's membership update was never certified"
    );
    eprintln!(
        "torus crash/{seed}: {} events, {} barriers, {} puts, {} membership updates certified",
        report.events,
        report.barriers_checked,
        report.puts_checked,
        report.membership_updates_checked
    );
}

/// The seed matrix: every cell under two noise seeds.
macro_rules! crash_matrix {
    ($($name:ident => $runner:ident($seed:expr);)*) => {$(
        #[test]
        fn $name() {
            $runner($seed);
        }
    )*};
}

crash_matrix! {
    crash_during_barrier_seed7 => run_crash_during_barrier(7);
    crash_during_barrier_seed23 => run_crash_during_barrier(23);
    crash_mid_get_seed7 => run_crash_mid_get(7);
    crash_mid_get_seed23 => run_crash_mid_get(23);
    freeze_then_thaw_seed7 => run_freeze_then_thaw(7);
    freeze_then_thaw_seed23 => run_freeze_then_thaw(23);
    rejoin_after_crash_seed7 => run_rejoin_after_crash(7);
    rejoin_after_crash_seed23 => run_rejoin_after_crash(23);
    crash_during_dissemination_barrier_seed7 => run_crash_during_dissemination_barrier(7);
    crash_during_dissemination_barrier_seed23 => run_crash_during_dissemination_barrier(23);
}
