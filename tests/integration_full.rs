//! Whole-stack integration scenarios: realistic distributed algorithms
//! exercising many features together, with results checked against
//! sequential oracles and traffic checked against the stats counters.

use rand::prelude::*;
use rand::rngs::StdRng;
use shmem_ntb::shmem::{
    ActiveSet, BarrierAlgorithm, CmpOp, OpOptions, ReduceOp, ShmemConfig, ShmemWorld, TransferMode,
};

/// Distributed bucket sort: sample keys, alltoall into owner buckets,
/// sort locally, collect the (variable-length) sorted runs back.
#[test]
fn distributed_bucket_sort() {
    const PES: usize = 4;
    const KEYS_PER_PE: usize = 500;
    let cfg = ShmemConfig::fast_sim().with_hosts(PES);
    let sorted_views = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();

        // Deterministic keys in [0, 4n*256): bucket b owns [b*256n, ...).
        let mut rng = StdRng::seed_from_u64(0x50FA + me as u64);
        let keys: Vec<u32> =
            (0..KEYS_PER_PE).map(|_| rng.random_range(0..(n as u32 * 1024))).collect();

        // Exchange: block j of my send buffer holds my keys for bucket j.
        // Count first so blocks are fixed-size with a length prefix.
        let block = KEYS_PER_PE + 1; // worst case: all my keys in one bucket
        let mut send = vec![0u32; n * block];
        for j in 0..n {
            let lo = (j as u32) * 1024;
            let hi = lo + 1024;
            let mine: Vec<u32> = keys.iter().copied().filter(|&k| k >= lo && k < hi).collect();
            send[j * block] = mine.len() as u32;
            send[j * block + 1..j * block + 1 + mine.len()].copy_from_slice(&mine);
        }
        let recv = ctx.calloc_array::<u32>(n * block).unwrap();
        ctx.alltoall(&recv, &send, block).unwrap();

        // Local sort of everything this bucket received.
        let raw = ctx.read_local_slice::<u32>(&recv, 0, n * block).unwrap();
        let mut bucket: Vec<u32> = Vec::new();
        for j in 0..n {
            let len = raw[j * block] as usize;
            bucket.extend_from_slice(&raw[j * block + 1..j * block + 1 + len]);
        }
        bucket.sort_unstable();

        // Collect variable-length sorted runs back to everyone.
        let dest = ctx.calloc_array::<u32>(n * KEYS_PER_PE).unwrap();
        let total = ctx.collect(&dest, &bucket).unwrap();
        assert_eq!(total, n * KEYS_PER_PE, "no key lost");
        ctx.read_local_slice::<u32>(&dest, 0, total).unwrap()
    })
    .unwrap();

    // Every PE assembled the same, globally sorted sequence.
    let reference = {
        let mut all: Vec<u32> = (0..PES)
            .flat_map(|pe| {
                let mut rng = StdRng::seed_from_u64(0x50FA + pe as u64);
                (0..KEYS_PER_PE)
                    .map(move |_| rng.random_range(0..(PES as u32 * 1024)))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        all
    };
    for view in &sorted_views {
        assert_eq!(view, &reference);
    }
}

/// A producer/consumer pipeline across teams: even PEs produce into odd
/// PEs' queues with puts + flags; odd PEs consume with wait_until; a
/// team-allreduce checks the grand total.
#[test]
fn producer_consumer_pipeline_with_teams() {
    const PES: usize = 6;
    const ITEMS: usize = 40;
    let cfg = ShmemConfig::fast_sim().with_hosts(PES);
    ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let producers = ctx.team_split(ActiveSet::new(0, 1, 3)).unwrap(); // 0,2,4
        let consumers = ctx.team_split(ActiveSet::new(1, 1, 3)).unwrap(); // 1,3,5
        let queue = ctx.calloc_array::<u64>(ITEMS).unwrap();
        let head = ctx.calloc_array::<u64>(1).unwrap();

        if producers.is_member() {
            // Produce into my right neighbour (a consumer).
            let target = me + 1;
            for i in 0..ITEMS {
                ctx.put(&queue, i, (me * 1000 + i) as u64, target).unwrap();
                ctx.quiet().expect("quiet"); // item visible before the head moves
                ctx.put(&head, 0, i as u64 + 1, target).unwrap();
            }
            ctx.quiet().expect("quiet");
        } else {
            // Consume: wait for the head to advance, check items in order.
            let source = me - 1;
            let mut expect = 0u64;
            while (expect as usize) < ITEMS {
                ctx.wait_until(&head, 0, CmpOp::Gt, expect).unwrap();
                let available = ctx.read_local::<u64>(&head, 0).unwrap();
                while expect < available {
                    let item = ctx.read_local::<u64>(&queue, expect as usize).unwrap();
                    assert_eq!(item, (source * 1000) as u64 + expect, "in-order delivery");
                    expect += 1;
                }
            }
        }
        ctx.barrier_all().unwrap();

        // Consumers agree on the total consumed via their team reduction.
        let consumed = if consumers.is_member() { ITEMS as u64 } else { 0 };
        if let Some(totals) = ctx.team_allreduce(&consumers, ReduceOp::Sum, &[consumed]).unwrap() {
            assert_eq!(totals[0], 3 * ITEMS as u64);
        }
        ctx.barrier_all().unwrap();
        ctx.team_destroy(producers).unwrap();
        ctx.team_destroy(consumers).unwrap();
    })
    .unwrap();
}

/// Mixed chaos: every PE concurrently puts, gets, atomics and barriers
/// for several epochs in both transfer modes and both barrier
/// algorithms; verify per-epoch invariants and final counters.
#[test]
fn mixed_traffic_stress_all_modes() {
    for alg in [BarrierAlgorithm::RingSweep, BarrierAlgorithm::Dissemination] {
        let cfg = ShmemConfig::fast_sim().with_hosts(5).with_barrier_algorithm(alg);
        ShmemWorld::run(cfg, |ctx| {
            let me = ctx.my_pe();
            let n = ctx.num_pes();
            let board = ctx.calloc_array::<u64>(n * n).unwrap();
            let counter = ctx.calloc_array::<u64>(1).unwrap();
            for epoch in 1..=4u64 {
                let mode = if epoch % 2 == 0 { TransferMode::Dma } else { TransferMode::Memcpy };
                // Scatter a row to every PE.
                for pe in 0..n {
                    let row: Vec<u64> =
                        (0..n).map(|c| epoch * 10_000 + (me * n + c) as u64).collect();
                    if pe == me {
                        ctx.write_local_slice(&board, me * n, &row).unwrap();
                    } else {
                        ctx.put_slice_opts(&board, me * n, &row, pe, OpOptions::new().mode(mode))
                            .unwrap();
                    }
                }
                // Bump the shared counter at the epoch's owner PE.
                ctx.atomic_fetch_add(&counter, 0, 1u64, (epoch as usize) % n).unwrap();
                ctx.barrier_all().unwrap();
                // Validate the full board locally and by remote get.
                let local = ctx.read_local_slice::<u64>(&board, 0, n * n).unwrap();
                for (i, v) in local.iter().enumerate() {
                    assert_eq!(*v, epoch * 10_000 + i as u64, "epoch {epoch} cell {i}");
                }
                let remote = ctx.get_slice::<u64>(&board, 0, n, (me + 1) % n).unwrap();
                for (c, v) in remote.iter().enumerate() {
                    assert_eq!(*v, epoch * 10_000 + c as u64);
                }
                ctx.barrier_all().unwrap();
            }
            // Each epoch's owner saw n increments.
            let owner_count = ctx.read_local::<u64>(&counter, 0).unwrap();
            let expected: u64 =
                (1..=4u64).filter(|e| (*e as usize) % n == me).count() as u64 * n as u64;
            assert_eq!(owner_count, expected);
            ctx.barrier_all().unwrap();
        })
        .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    }
}

/// The stats surface reflects real traffic.
#[test]
fn stats_reflect_traffic() {
    let cfg = ShmemConfig::fast_sim().with_hosts(3);
    let stats = ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.calloc_array::<u8>(4096).unwrap();
        if ctx.my_pe() == 0 {
            ctx.put_slice(&sym, 0, &[1u8; 4096], 1).unwrap();
            ctx.quiet().expect("quiet");
            // Above the PIO crossover: small gets ride the aperture fast
            // path and never wake the responder (gets_served stays 0 for
            // them), so use a bulk get to exercise the protocol path.
            let _ = ctx.get_slice::<u8>(&sym, 0, 4096, 2).unwrap();
        }
        ctx.barrier_all().unwrap();
        ctx.stats_snapshot()
    })
    .unwrap();
    // PE 1 delivered the put; PE 2 served the get; PE 0 got its ack.
    assert!(stats[1].puts_delivered >= 1, "{:?}", stats[1]);
    assert!(stats[2].gets_served >= 1, "{:?}", stats[2]);
    assert!(stats[0].acks_received >= 1, "{:?}", stats[0]);
    assert!(stats[0].bytes_tx >= 4096);
    assert!(stats[1].bytes_rx >= 4096);
    for s in &stats {
        assert!(s.heap_capacity > 0);
        assert!(s.heap_live_bytes >= 4096 + 64, "sym + barrier flags live");
    }
}

/// Aligned symmetric allocation keeps the cross-PE offset invariant.
#[test]
fn aligned_alloc_is_symmetric() {
    let cfg = ShmemConfig::fast_sim().with_hosts(3);
    let offs = ShmemWorld::run(cfg, |ctx| {
        let _pad = ctx.malloc(24).unwrap();
        let a = ctx.malloc_aligned(100, 4096).unwrap();
        assert_eq!(a.offset() % 4096, 0);
        a.offset()
    })
    .unwrap();
    assert!(offs.windows(2).all(|w| w[0] == w[1]));
}
