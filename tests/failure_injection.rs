//! Failure injection across the stack: LUT rejections, window-limit
//! violations, symmetric-heap exhaustion and misuse, barrier timeouts
//! against a diverged peer, doorbell masking, and the lossy-link
//! recovery scenarios (dropped doorbells, corrupted payloads, link-down
//! windows, retry exhaustion).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shmem_ntb::net::{
    doorbells, AmoOp, DeliveryTarget, NetConfig, RetryPolicy, RingNetwork, RouteDirection,
};
use shmem_ntb::shmem::{OpOptions, ShmemConfig, ShmemError, ShmemWorld};
use shmem_ntb::sim::{
    connect_ports, DoorbellWaiter, FaultAction, FaultPlan, HostMemory, LinkHealth, NtbError,
    PortConfig, Region, TimeModel, TransferMode,
};

#[test]
fn lut_rejection_blocks_and_recovers() {
    let ma = HostMemory::new(0, 64 << 20);
    let mb = HostMemory::new(1, 64 << 20);
    let cfg_a = PortConfig::new(0, 1);
    let a_reqid = cfg_a.requester_id;
    let (a, b) =
        connect_ports(cfg_a, PortConfig::new(1, 0), &ma, &mb, Arc::new(TimeModel::zero())).unwrap();
    a.pio_write(0, b"allowed").unwrap();
    // Pull A's requester id out of B's admission table: traffic must fail
    // observably, not corrupt memory.
    b.lut().disable(a_reqid);
    let before = b.incoming().region().read_vec(0, 7).unwrap();
    let err = a.pio_write(0, b"BLOCKED").unwrap_err();
    assert_eq!(err, NtbError::LutMiss { requester_id: a_reqid });
    assert_eq!(b.incoming().region().read_vec(0, 7).unwrap(), before, "no partial write");
    assert_eq!(b.stats().lut_rejects(), 1);
    // Re-enabling restores the link.
    b.lut().insert(a_reqid);
    a.pio_write(0, b"again ok").unwrap();
}

#[test]
fn window_limit_violation_is_typed_and_harmless() {
    let ma = HostMemory::new(0, 64 << 20);
    let mb = HostMemory::new(1, 64 << 20);
    let (a, _b) = connect_ports(
        PortConfig::new(0, 1).with_window_size(4096),
        PortConfig::new(1, 0).with_window_size(4096),
        &ma,
        &mb,
        Arc::new(TimeModel::zero()),
    )
    .unwrap();
    let err = a.pio_write(4000, &[0u8; 200]).unwrap_err();
    assert!(matches!(err, NtbError::WindowLimitExceeded { .. }));
    assert_eq!(a.stats().window_violations(), 1);
    // The DMA path reports the same failure through its completion.
    let src = Region::anonymous(256);
    let h = a
        .dma_submit(shmem_ntb::sim::DmaRequest { src, src_offset: 0, dst_offset: 4000, len: 200 })
        .unwrap();
    assert!(matches!(h.wait(), Err(NtbError::WindowLimitExceeded { .. })));
}

#[test]
fn masked_doorbell_defers_service_until_unmask() {
    let net = RingNetwork::build(NetConfig::fast(2)).unwrap();
    let n1 = net.node(1);
    let port = n1.endpoint(RouteDirection::Left).port();
    // Mask the barrier-start vector at host 1, ring it from host 0: it
    // must latch but not deliver, then fire on unmask.
    port.doorbell().mask(1 << doorbells::DB_BARRIER_START);
    net.node(0).send_barrier(RouteDirection::Right, true).unwrap();
    let waited = n1.wait_barrier(RouteDirection::Left, true, Duration::from_millis(30)).unwrap();
    assert!(!waited, "masked interrupt must not deliver");
    port.doorbell().unmask(1 << doorbells::DB_BARRIER_START);
    let waited = n1.wait_barrier(RouteDirection::Left, true, Duration::from_secs(1)).unwrap();
    assert!(waited, "latched interrupt replays on unmask");
}

#[test]
fn symmetric_heap_exhaustion_is_reported_per_pe() {
    // Tiny host arenas: the windows fit, the second big malloc does not.
    let mut cfg = ShmemConfig::fast_sim().with_hosts(2).with_heap_chunk(1 << 20);
    cfg.net.host_mem_capacity = 64 << 20;
    cfg.net.window_size = 1 << 20;
    let outcomes = ShmemWorld::run(cfg, |ctx| {
        // Two links/host * 1 MiB windows = 2 MiB; leave room for one 32 MiB
        // heap grab, then exhaust.
        let first = ctx.malloc(32 << 20);
        assert!(first.is_ok());
        let second = ctx.heap().malloc(512 << 20);
        matches!(second, Err(ShmemError::OutOfSymmetricMemory { .. }))
    })
    .unwrap();
    assert_eq!(outcomes, vec![true, true]);
}

#[test]
fn invalid_and_double_free_detected() {
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
        let a = ctx.malloc(128).unwrap();
        ctx.free(a).unwrap();
        let err = ctx.free(a).unwrap_err();
        assert!(matches!(err, ShmemError::InvalidFree { .. }));
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn barrier_times_out_against_diverged_peer() {
    let mut cfg = ShmemConfig::fast_sim().with_hosts(3);
    cfg.barrier_timeout = Duration::from_millis(200);
    let outcomes = ShmemWorld::run(cfg, |ctx| {
        if ctx.my_pe() == 2 {
            // PE 2 "diverges": it never reaches the barrier.
            return true;
        }
        // The detector is disabled here, so the stall surfaces as a
        // timeout naming the stalled phase and the neighbour waited on.
        matches!(ctx.barrier_all(), Err(ShmemError::BarrierTimeout { .. }))
    })
    .unwrap();
    assert_eq!(outcomes, vec![true, true, true]);
}

#[test]
fn wait_until_times_out_when_nobody_writes() {
    let mut cfg = ShmemConfig::fast_sim().with_hosts(2);
    cfg.wait_timeout = Duration::from_millis(100);
    ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.calloc_array::<u64>(1).unwrap();
        let err = ctx.wait_until(&sym, 0, shmem_ntb::shmem::CmpOp::Eq, 1u64).unwrap_err();
        assert_eq!(err, ShmemError::WaitTimeout);
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn oversized_transfers_rejected_cleanly() {
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
        let sym = ctx.calloc_array::<u8>(64).unwrap();
        // Out-of-bounds put and get: typed errors, no panic, no delivery.
        assert!(matches!(
            ctx.put_slice(&sym, 60, &[0u8; 10], 1),
            Err(ShmemError::SymmetricBounds { .. })
        ));
        assert!(matches!(
            ctx.get_slice::<u8>(&sym, 0, 65, 1),
            Err(ShmemError::SymmetricBounds { .. })
        ));
        ctx.barrier_all().unwrap();
        // The world is still healthy afterwards.
        if ctx.my_pe() == 0 {
            ctx.put_slice(&sym, 0, &[7u8; 64], 1).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            assert_eq!(ctx.read_local_slice::<u8>(&sym, 0, 64).unwrap(), vec![7u8; 64]);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn transfer_mode_failures_do_not_wedge_the_ring() {
    // Interleave failing and succeeding operations in both modes.
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(3), |ctx| {
        let sym = ctx.calloc_array::<u8>(256).unwrap();
        for round in 0..10 {
            let mode = if round % 2 == 0 { TransferMode::Dma } else { TransferMode::Memcpy };
            let bad = ctx.put_slice_opts(&sym, 200, &[0u8; 100], 1, OpOptions::new().mode(mode));
            assert!(bad.is_err());
            if ctx.my_pe() == 0 {
                ctx.put_slice_opts(&sym, 0, &[round as u8; 16], 1, OpOptions::new().mode(mode))
                    .unwrap();
            }
            ctx.barrier_all().unwrap();
            if ctx.my_pe() == 1 {
                assert_eq!(ctx.read_local::<u8>(&sym, 0).unwrap(), round as u8);
            }
            ctx.barrier_all().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn doorbell_waiter_timeout_is_clean() {
    let net = RingNetwork::build(NetConfig::fast(2)).unwrap();
    let port = net.node(0).endpoint(RouteDirection::Right).port();
    let r = port.wait_doorbell(1 << doorbells::DB_BARRIER_END, Some(Duration::from_millis(20)));
    assert_eq!(r, DoorbellWaiter::TimedOut);
}

// ---------------------------------------------------------------------------
// Lossy-link recovery scenarios: scripted fault plans exercising the
// end-to-end retransmission, checksum, reroute and bounded-failure
// machinery of the ntb-net layer.
// ---------------------------------------------------------------------------

/// A flat 1 MiB symmetric space standing in for the OpenSHMEM heap, so
/// the recovery protocol can be observed without the shmem runtime in
/// the way.
struct LossyHeap {
    region: Region,
    amo_lock: std::sync::Mutex<()>,
}

impl LossyHeap {
    fn new() -> Arc<Self> {
        Arc::new(LossyHeap {
            region: Region::anonymous(1 << 20),
            amo_lock: std::sync::Mutex::new(()),
        })
    }
}

impl DeliveryTarget for LossyHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> shmem_ntb::sim::Result<()> {
        self.region.write(offset, data)
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> shmem_ntb::sim::Result<()> {
        self.region.read(offset, out)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> shmem_ntb::sim::Result<u64> {
        let _guard = self.amo_lock.lock().unwrap();
        let mut buf = [0u8; 8];
        self.region.read(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        let new = op.apply(old, operand, compare);
        self.region.write(offset, &new.to_le_bytes()[..width])?;
        Ok(old)
    }
}

/// Tight timeouts so recovery rounds complete in milliseconds.
fn lossy_retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(40),
        max_retries: 4,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 2,
    }
}

fn build_lossy(hosts: usize, faults: FaultPlan) -> (RingNetwork, Vec<Arc<LossyHeap>>) {
    let cfg = NetConfig::fast(hosts).with_retry(lossy_retry()).with_faults(faults);
    let net = RingNetwork::build(cfg).unwrap();
    let heaps: Vec<Arc<LossyHeap>> = (0..hosts).map(|_| LossyHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }
    (net, heaps)
}

#[test]
fn dropped_doorbell_put_is_retransmitted_to_completion() {
    // The handshake uses only scratchpad spin-waits, so the very first
    // doorbell on link 0 (host 0 -> host 1) is this put's DMA doorbell.
    let plan = FaultPlan::none().with_seed(7).with_scripted(0, FaultAction::DropDoorbell, 1);
    let (net, heaps) = build_lossy(3, plan);
    let payload: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 251) as u8).collect();
    net.node(0).put_bytes(1, 256, &payload, TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("put must complete despite the dropped doorbell");
    assert_eq!(heaps[1].region.read_vec(256, 4096).unwrap(), payload, "heap must be byte-exact");
    let dropped: u64 = net.fault_stats().iter().map(|s| s.doorbells_dropped).sum();
    assert_eq!(dropped, 1, "exactly the scripted doorbell was dropped");
    assert_eq!(net.node(0).outstanding_puts(), 0);
    for node in net.nodes() {
        assert!(node.take_errors().is_empty(), "host {} saw errors", node.host_id());
    }
}

#[test]
fn corrupted_payload_is_rejected_and_redelivered() {
    // The first window write on link 0 is the put's payload; it is
    // corrupted in flight, so the receiver's CRC check must reject it
    // and the ack-timeout sweeper must redeliver a clean copy.
    let plan = FaultPlan::none().with_seed(9).with_scripted(0, FaultAction::CorruptPayload, 1);
    let (net, heaps) = build_lossy(3, plan);
    let payload: Vec<u8> = (0..8192u32).map(|i| (i * 13 % 251) as u8).collect();
    net.node(0).put_bytes(1, 0, &payload, TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("put must complete despite the corrupted payload");
    assert_eq!(heaps[1].region.read_vec(0, 8192).unwrap(), payload, "heap must be byte-exact");
    let corrupted: u64 = net.fault_stats().iter().map(|s| s.payloads_corrupted).sum();
    assert_eq!(corrupted, 1, "exactly the scripted payload write was corrupted");
    assert!(
        net.node(1).stats().checksum_rejects.load(Ordering::Relaxed) >= 1,
        "receiver must have rejected the corrupted frame"
    );
    assert!(
        net.node(0).stats().retransmits.load(Ordering::Relaxed) >= 1,
        "origin must have retransmitted after the missing ack"
    );
    for node in net.nodes() {
        assert!(node.take_errors().is_empty(), "host {} saw errors", node.host_id());
    }
}

#[test]
fn link_down_window_reroutes_and_recovers() {
    // Link 0 (host 0 <-> host 1) goes dark for 150 ms the moment it is
    // first used. The put from 0 to 1 must arrive the long way around
    // (0 -> 2 -> 1), and once the outage expires a probe must bring the
    // endpoint back to Up.
    let plan = FaultPlan::none().with_link_down(0, 0, Duration::from_millis(150));
    let (net, heaps) = build_lossy(3, plan);
    let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    net.node(0).put_bytes(1, 512, &payload, TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("put must complete via the long way around");
    assert_eq!(heaps[1].region.read_vec(512, 4096).unwrap(), payload, "heap must be byte-exact");
    let stats = net.node(0).stats();
    assert!(stats.link_down_events.load(Ordering::Relaxed) >= 1, "endpoint must go Down");
    assert!(stats.reroutes.load(Ordering::Relaxed) >= 1, "traffic must reroute leftward");
    let windows: u64 = net.fault_stats().iter().map(|s| s.link_down_windows).sum();
    assert_eq!(windows, 1, "exactly one outage window fired");
    // Recovery: the sweeper probes the Down endpoint; once the window
    // expires the probe succeeds and health returns to Up.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if net.node(0).endpoint(RouteDirection::Right).health() == LinkHealth::Up {
            break;
        }
        assert!(Instant::now() < deadline, "link did not recover after the outage window");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(net.node(0).stats().probes_sent.load(Ordering::Relaxed) >= 1, "sweeper must probe");
    // The restored path carries traffic again.
    let second: Vec<u8> = (0..2048u32).map(|i| (i * 3 % 251) as u8).collect();
    net.node(0).put_bytes(1, 65536, &second, TransferMode::Memcpy).unwrap();
    net.node(0).quiet().expect("post-recovery put");
    assert_eq!(heaps[1].region.read_vec(65536, 2048).unwrap(), second);
    for node in net.nodes() {
        assert!(node.take_errors().is_empty(), "host {} saw errors", node.host_id());
    }
}

#[test]
fn exhausted_retries_fail_within_the_policy_deadline() {
    // Both links of a 2-host ring stay dark for far longer than the
    // retry budget: the put must be abandoned and surface as a typed
    // LinkFailed from quiet(), within the policy's worst-case bound.
    let outage = Duration::from_secs(30);
    let plan = FaultPlan::none().with_link_down(0, 0, outage).with_link_down(1, 0, outage);
    let (net, _heaps) = build_lossy(2, plan);
    let policy = lossy_retry();
    let start = Instant::now();
    net.node(0).put_bytes(1, 0, &[0xEE; 1024], TransferMode::Dma).unwrap();
    let err = net.node(0).quiet().expect_err("put cannot complete with every link down");
    let elapsed = start.elapsed();
    assert!(
        matches!(err, NtbError::LinkFailed { attempts } if attempts >= 1),
        "expected LinkFailed, got {err:?}"
    );
    // Generous slack over worst_case() for sweeper tick granularity and
    // scheduler noise; the point is "bounded", not "instant".
    let bound = policy.worst_case() + Duration::from_secs(2);
    assert!(elapsed < bound, "failure took {elapsed:?}, bound {bound:?}");
    assert_eq!(net.node(0).outstanding_puts(), 0, "abandoned put must not linger");
    // A second quiet() must not re-report the consumed failure.
    net.node(0).quiet().expect("failure already reported and cleared");
}

#[test]
fn deadlined_get_fails_typed_and_fast_on_a_dark_link() {
    // Both links dark for far longer than both the op deadline and the
    // retry budget: a windowed get must surface the *typed*
    // DeadlineExceeded at its ~30ms budget — not LinkFailed after the
    // policy's full retry budget, and never a hang. The 30ms budget is
    // deliberately shorter than one ack_timeout, so the deadline clip in
    // the bounded wait is what fires, not a retransmission attempt.
    let outage = Duration::from_secs(30);
    let plan = FaultPlan::none().with_link_down(0, 0, outage).with_link_down(1, 0, outage);
    let cfg = NetConfig::fast(2)
        .with_retry(lossy_retry())
        .with_faults(plan)
        .with_get_pipeline(8 << 10, 4); // 8 sub-requests: the whole window sheds
    let net = RingNetwork::build(cfg).unwrap();
    let heaps: Vec<Arc<LossyHeap>> = (0..2).map(|_| LossyHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }
    let deadline_us = net.node(0).deadline_us_in(Duration::from_millis(30));
    let start = Instant::now();
    let err = net
        .node(0)
        .get_bytes_opts(1, 0, 64 << 10, TransferMode::Dma, deadline_us)
        .expect_err("get cannot complete with every link down");
    let elapsed = start.elapsed();
    assert!(matches!(err, NtbError::DeadlineExceeded), "expected DeadlineExceeded, got {err:?}");
    let budget = lossy_retry().worst_case();
    assert!(
        elapsed < budget,
        "deadlined get took {elapsed:?}; it must resolve at its ~30ms deadline, \
         not wait out the {budget:?} retry budget"
    );
    net.node(0).quiet().expect("a shed get must leave no failure record behind");
}

#[test]
fn shmem_get_deadline_is_typed_at_the_api() {
    // End-to-end through the SHMEM API: a bulk pipelined get with an
    // immediately-expiring OpOptions deadline surfaces the typed
    // ShmemError::DeadlineExceeded, and the context stays fully usable —
    // the same get without a deadline then completes byte-exact.
    const ELEMS: usize = 8 << 10; // 64 KiB: well past the PIO crossover
    let cfg = ShmemConfig::fast_sim().with_hosts(2).with_get_pipeline(8 << 10, 4);
    ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.calloc_array::<u64>(ELEMS).unwrap();
        let pattern: Vec<u64> = (0..ELEMS as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        if ctx.my_pe() == 1 {
            ctx.write_local_slice(&sym, 0, &pattern).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 0 {
            let opts = OpOptions::new().deadline(Duration::from_micros(1));
            let err = ctx
                .get_slice_opts::<u64>(&sym, 0, ELEMS, 1, opts)
                .expect_err("a 1µs budget cannot cover a 64 KiB windowed get");
            assert!(
                matches!(err, ShmemError::DeadlineExceeded),
                "expected the typed DeadlineExceeded, got {err}"
            );
            let got = ctx.get_slice::<u64>(&sym, 0, ELEMS, 1).unwrap();
            assert_eq!(got, pattern, "the context must stay usable after the shed get");
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn quiet_after_abandonment_is_clean_for_puts_on_the_restored_link() {
    // Regression: a finite outage long enough to exhaust the retry
    // budget abandons the in-flight put (quiet -> LinkFailed), then the
    // link recovers. Subsequent puts must complete with a clean quiet()
    // and an empty unacked table — generations must not bleed: no stale
    // entry from the abandoned put, no stale failure record, and no
    // late ack of the dead put id resurrecting anything.
    let outage = Duration::from_millis(700); // > lossy_retry().worst_case()
    let plan = FaultPlan::none().with_link_down(0, 0, outage).with_link_down(1, 0, outage);
    let (net, heaps) = build_lossy(2, plan);
    net.obs_enable();
    net.node(0).put_bytes(1, 0, &[0xAB; 1024], TransferMode::Dma).unwrap();
    let err = net.node(0).quiet().expect_err("put cannot survive the outage");
    assert!(matches!(err, NtbError::LinkFailed { .. }), "expected LinkFailed, got {err:?}");
    assert_eq!(net.node(0).outstanding_puts(), 0, "abandoned put must leave the table");
    // Second generation, issued while the links are still dark: the
    // sweeper owns it. Depending on where the outage ends it either
    // completes after recovery or is abandoned — both are legal, but in
    // both cases its fate must be reported exactly once and nothing may
    // linger.
    net.node(0).put_bytes(1, 2048, &[0xCD; 1024], TransferMode::Dma).unwrap();
    // Wait out the outage until a probe restores either endpoint.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let up = [RouteDirection::Right, RouteDirection::Left]
            .iter()
            .any(|&d| net.node(0).endpoint(d).health() == LinkHealth::Up);
        if up {
            break;
        }
        assert!(Instant::now() < deadline, "no endpoint recovered after the outage window");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Resolve the second generation: delivered or abandoned, exactly
    // once, leaving the table empty either way.
    match net.node(0).quiet() {
        Ok(()) => {
            assert_eq!(
                heaps[1].region.read_vec(2048, 1024).unwrap(),
                vec![0xCD; 1024],
                "second-generation put must be byte-exact when it completes"
            );
        }
        Err(e) => {
            assert!(matches!(e, NtbError::LinkFailed { .. }), "unexpected error {e:?}");
        }
    }
    assert_eq!(net.node(0).outstanding_puts(), 0, "second generation must not linger");
    net.node(0).quiet().expect("failure records must not survive their report");
    // Fresh puts on the restored link: every one must ack, quiet must be
    // clean, and nothing may linger in the unacked table afterwards.
    for round in 0..4u8 {
        let payload = vec![round.wrapping_mul(31).wrapping_add(5); 2048];
        net.node(0)
            .put_bytes(1, 4096 + u64::from(round) * 4096, &payload, TransferMode::Dma)
            .unwrap();
        net.node(0).quiet().unwrap_or_else(|e| {
            panic!("post-recovery quiet round {round} failed: {e:?}");
        });
        assert_eq!(
            net.node(0).outstanding_puts(),
            0,
            "stale unacked entries after post-recovery round {round}"
        );
        assert_eq!(
            heaps[1].region.read_vec(4096 + u64::from(round) * 4096, 2048).unwrap(),
            payload,
            "post-recovery payload round {round}"
        );
    }
    // The merged trace must satisfy every protocol invariant: in
    // particular the abandoned put resolved exactly once (PutAbandon)
    // and its late acks, if any, were suppressed rather than double
    // resolving it.
    let events = net.take_events();
    let report = shmem_ntb::net::check(&events, 2);
    assert!(
        report.is_clean(),
        "invariant violations after recovery:\n{}",
        report.render_violations()
    );
    for node in net.nodes() {
        assert!(node.take_errors().is_empty(), "host {} saw errors", node.host_id());
    }
}
