//! Failure injection across the stack: LUT rejections, window-limit
//! violations, symmetric-heap exhaustion and misuse, barrier timeouts
//! against a diverged peer, and doorbell masking.

use std::sync::Arc;
use std::time::Duration;

use shmem_ntb::net::{doorbells, NetConfig, RingNetwork, RouteDirection};
use shmem_ntb::shmem::{ShmemConfig, ShmemError, ShmemWorld};
use shmem_ntb::sim::{
    connect_ports, DoorbellWaiter, HostMemory, NtbError, PortConfig, Region, TimeModel,
    TransferMode,
};

#[test]
fn lut_rejection_blocks_and_recovers() {
    let ma = HostMemory::new(0, 64 << 20);
    let mb = HostMemory::new(1, 64 << 20);
    let cfg_a = PortConfig::new(0, 1);
    let a_reqid = cfg_a.requester_id;
    let (a, b) =
        connect_ports(cfg_a, PortConfig::new(1, 0), &ma, &mb, Arc::new(TimeModel::zero())).unwrap();
    a.pio_write(0, b"allowed").unwrap();
    // Pull A's requester id out of B's admission table: traffic must fail
    // observably, not corrupt memory.
    b.lut().disable(a_reqid);
    let before = b.incoming().region().read_vec(0, 7).unwrap();
    let err = a.pio_write(0, b"BLOCKED").unwrap_err();
    assert_eq!(err, NtbError::LutMiss { requester_id: a_reqid });
    assert_eq!(b.incoming().region().read_vec(0, 7).unwrap(), before, "no partial write");
    assert_eq!(b.stats().lut_rejects(), 1);
    // Re-enabling restores the link.
    b.lut().insert(a_reqid);
    a.pio_write(0, b"again ok").unwrap();
}

#[test]
fn window_limit_violation_is_typed_and_harmless() {
    let ma = HostMemory::new(0, 64 << 20);
    let mb = HostMemory::new(1, 64 << 20);
    let (a, _b) = connect_ports(
        PortConfig::new(0, 1).with_window_size(4096),
        PortConfig::new(1, 0).with_window_size(4096),
        &ma,
        &mb,
        Arc::new(TimeModel::zero()),
    )
    .unwrap();
    let err = a.pio_write(4000, &[0u8; 200]).unwrap_err();
    assert!(matches!(err, NtbError::WindowLimitExceeded { .. }));
    assert_eq!(a.stats().window_violations(), 1);
    // The DMA path reports the same failure through its completion.
    let src = Region::anonymous(256);
    let h = a
        .dma_submit(shmem_ntb::sim::DmaRequest { src, src_offset: 0, dst_offset: 4000, len: 200 })
        .unwrap();
    assert!(matches!(h.wait(), Err(NtbError::WindowLimitExceeded { .. })));
}

#[test]
fn masked_doorbell_defers_service_until_unmask() {
    let net = RingNetwork::build(NetConfig::fast(2)).unwrap();
    let n1 = net.node(1);
    let port = n1.endpoint(RouteDirection::Left).port();
    // Mask the barrier-start vector at host 1, ring it from host 0: it
    // must latch but not deliver, then fire on unmask.
    port.doorbell().mask(1 << doorbells::DB_BARRIER_START);
    net.node(0).send_barrier(RouteDirection::Right, true).unwrap();
    let waited = n1.wait_barrier(RouteDirection::Left, true, Duration::from_millis(30)).unwrap();
    assert!(!waited, "masked interrupt must not deliver");
    port.doorbell().unmask(1 << doorbells::DB_BARRIER_START);
    let waited = n1.wait_barrier(RouteDirection::Left, true, Duration::from_secs(1)).unwrap();
    assert!(waited, "latched interrupt replays on unmask");
}

#[test]
fn symmetric_heap_exhaustion_is_reported_per_pe() {
    // Tiny host arenas: the windows fit, the second big malloc does not.
    let mut cfg = ShmemConfig::fast_sim().with_hosts(2).with_heap_chunk(1 << 20);
    cfg.net.host_mem_capacity = 64 << 20;
    cfg.net.window_size = 1 << 20;
    let outcomes = ShmemWorld::run(cfg, |ctx| {
        // Two links/host * 1 MiB windows = 2 MiB; leave room for one 32 MiB
        // heap grab, then exhaust.
        let first = ctx.malloc(32 << 20);
        assert!(first.is_ok());
        let second = ctx.heap().malloc(512 << 20);
        matches!(second, Err(ShmemError::OutOfSymmetricMemory { .. }))
    })
    .unwrap();
    assert_eq!(outcomes, vec![true, true]);
}

#[test]
fn invalid_and_double_free_detected() {
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
        let a = ctx.malloc(128).unwrap();
        ctx.free(a).unwrap();
        let err = ctx.free(a).unwrap_err();
        assert!(matches!(err, ShmemError::InvalidFree { .. }));
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn barrier_times_out_against_diverged_peer() {
    let mut cfg = ShmemConfig::fast_sim().with_hosts(3);
    cfg.barrier_timeout = Duration::from_millis(200);
    let outcomes = ShmemWorld::run(cfg, |ctx| {
        if ctx.my_pe() == 2 {
            // PE 2 "diverges": it never reaches the barrier.
            return true;
        }
        matches!(ctx.barrier_all(), Err(ShmemError::BarrierTimeout))
    })
    .unwrap();
    assert_eq!(outcomes, vec![true, true, true]);
}

#[test]
fn wait_until_times_out_when_nobody_writes() {
    let mut cfg = ShmemConfig::fast_sim().with_hosts(2);
    cfg.wait_timeout = Duration::from_millis(100);
    ShmemWorld::run(cfg, |ctx| {
        let sym = ctx.calloc_array::<u64>(1).unwrap();
        let err = ctx.wait_until(&sym, 0, shmem_ntb::shmem::CmpOp::Eq, 1u64).unwrap_err();
        assert_eq!(err, ShmemError::WaitTimeout);
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn oversized_transfers_rejected_cleanly() {
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
        let sym = ctx.calloc_array::<u8>(64).unwrap();
        // Out-of-bounds put and get: typed errors, no panic, no delivery.
        assert!(matches!(
            ctx.put_slice(&sym, 60, &[0u8; 10], 1),
            Err(ShmemError::SymmetricBounds { .. })
        ));
        assert!(matches!(
            ctx.get_slice::<u8>(&sym, 0, 65, 1),
            Err(ShmemError::SymmetricBounds { .. })
        ));
        ctx.barrier_all().unwrap();
        // The world is still healthy afterwards.
        if ctx.my_pe() == 0 {
            ctx.put_slice(&sym, 0, &[7u8; 64], 1).unwrap();
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            assert_eq!(ctx.read_local_slice::<u8>(&sym, 0, 64).unwrap(), vec![7u8; 64]);
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn transfer_mode_failures_do_not_wedge_the_ring() {
    // Interleave failing and succeeding operations in both modes.
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(3), |ctx| {
        let sym = ctx.calloc_array::<u8>(256).unwrap();
        for round in 0..10 {
            let mode =
                if round % 2 == 0 { TransferMode::Dma } else { TransferMode::Memcpy };
            let bad = ctx.put_slice_with_mode(&sym, 200, &[0u8; 100], 1, mode);
            assert!(bad.is_err());
            if ctx.my_pe() == 0 {
                ctx.put_slice_with_mode(&sym, 0, &[round as u8; 16], 1, mode).unwrap();
            }
            ctx.barrier_all().unwrap();
            if ctx.my_pe() == 1 {
                assert_eq!(ctx.read_local::<u8>(&sym, 0).unwrap(), round as u8);
            }
            ctx.barrier_all().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn doorbell_waiter_timeout_is_clean() {
    let net = RingNetwork::build(NetConfig::fast(2)).unwrap();
    let port = net.node(0).endpoint(RouteDirection::Right).port();
    let r = port.wait_doorbell(1 << doorbells::DB_BARRIER_END, Some(Duration::from_millis(20)));
    assert_eq!(r, DoorbellWaiter::TimedOut);
}
