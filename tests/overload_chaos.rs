//! Overload chaos matrix: resource faults (gray-failure slow ports,
//! shrinking forward queues, starved credit windows) under
//! deadline-bounded traffic, driven through the full OpenSHMEM API.
//!
//! The contract under test is the overload-survival layer's (DESIGN.md
//! §14): offered work either completes or is shed with a *typed* error
//! (`Overloaded` / `DeadlineExceeded`) in bounded time — never a hang,
//! never a silent drop, never a panic. Every run records a full event
//! trace and puts it through the protocol-invariant checker, which now
//! also certifies the overload invariants: queue admissions within
//! capacity, credit conservation (invariant 9) and no transmission of
//! expired frames (invariant 10). A violation writes the rendered trace
//! window to `target/trace-dumps/<label>.txt` before panicking, the same
//! artifact contract as the chaos and crash matrices.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use shmem_ntb::net::check;
use shmem_ntb::shmem::{OpOptions, OverloadConfig, ShmemConfig, ShmemError, ShmemWorld};
use shmem_ntb::sim::{render_events, FaultPlan, TimeModel, TraceEvent};

const HOSTS: usize = 3;
const ROUNDS: usize = 20;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// One axis of the overload matrix. Each family stresses one admission
/// mechanism hard, so a regression names its subsystem.
#[derive(Clone, Copy, Debug)]
enum Family {
    /// Gray failure: one port renegotiates down mid-run (wire time ×6),
    /// recovers, all under light doorbell loss.
    SlowPort,
    /// A forward queue shrinks mid-run; admissions must respect the
    /// *new* capacity immediately.
    QueueShrink,
    /// A starved credit window (4 frames) under an incast at PE 0 —
    /// flow control is the only thing standing between the senders and
    /// an unbounded queue.
    CreditStarve,
    /// Tight 1ms deadlines through a badly slowed port: most work is
    /// shed, and every shed must still leave a coherent trace.
    DeadlineStorm,
    /// Get-heavy deadline storm: bulk pipelined gets (16 sub-requests,
    /// 4 in flight) with tight deadlines through the slowed port, so
    /// deadlines expire *mid-window* and the abandoned sub-requests
    /// must still satisfy the checker's get-resolution invariant.
    GetDeadlineStorm,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::SlowPort => "slow-port",
            Family::QueueShrink => "queue-shrink",
            Family::CreditStarve => "credit-starve",
            Family::DeadlineStorm => "deadline-storm",
            Family::GetDeadlineStorm => "get-deadline-storm",
        }
    }

    fn plan(self, seed: u64) -> FaultPlan {
        let base = FaultPlan::none().with_seed(seed);
        match self {
            Family::SlowPort => {
                base.with_doorbell_drop(0.01).with_slow_port(0, ms(20), 6.0, ms(120))
            }
            Family::QueueShrink => base.with_doorbell_drop(0.01).with_queue_shrink(1, ms(20), 8),
            Family::CreditStarve => base,
            Family::DeadlineStorm | Family::GetDeadlineStorm => {
                base.with_slow_port(0, ms(15), 10.0, ms(150))
            }
        }
    }

    /// A slow port only bites when wire time is nonzero; the other
    /// families run on the zero model for speed.
    fn model(self) -> TimeModel {
        match self {
            Family::SlowPort | Family::DeadlineStorm | Family::GetDeadlineStorm => {
                TimeModel::scaled(0.05)
            }
            Family::QueueShrink | Family::CreditStarve => TimeModel::zero(),
        }
    }

    fn overload(self) -> OverloadConfig {
        match self {
            Family::CreditStarve => OverloadConfig { credit_window: 4, ..Default::default() },
            Family::QueueShrink => OverloadConfig {
                forward_queue_cap: 16,
                high_watermark: 12,
                low_watermark: 8,
                ..Default::default()
            },
            Family::SlowPort | Family::DeadlineStorm | Family::GetDeadlineStorm => {
                OverloadConfig::default()
            }
        }
    }

    fn deadline(self) -> Duration {
        match self {
            Family::DeadlineStorm => ms(1),
            Family::GetDeadlineStorm => ms(2),
            _ => ms(5),
        }
    }

    /// Get-heavy families add a bulk pipelined get per round.
    fn get_heavy(self) -> bool {
        matches!(self, Family::GetDeadlineStorm)
    }

    /// Incast (everyone fires at PE 0) vs rotating all-to-all.
    fn incast(self) -> bool {
        matches!(self, Family::CreditStarve)
    }
}

/// What one overload cell leaves behind.
struct Outcome {
    events: Vec<TraceEvent>,
    dropped: u64,
    /// Operations shed with a typed error across all PEs (diagnostics;
    /// timing-dependent, legitimately zero on a fast machine).
    typed_sheds: u64,
}

/// Bulk get size for the get-heavy families, in u64 elements (64 KiB —
/// 16 sub-requests at the 4 KiB pipeline chunk below, 4 in flight).
const GET_ELEMS: usize = 8 << 10;

fn run_cell(family: Family, seed: u64) -> Outcome {
    let cfg = ShmemConfig::fast_sim()
        .with_hosts(HOSTS)
        .with_model(family.model())
        .with_overload(family.overload())
        .with_get_pipeline(4 << 10, 4)
        .with_faults(family.plan(seed));
    let results = ShmemWorld::run(cfg, |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let sym = ctx.calloc_array::<u64>(GET_ELEMS).expect("alloc");
        ctx.barrier_all().expect("bring-up barrier");
        let me = ctx.my_pe();
        let data: Vec<u64> = (0..64).map(|i| (me * 1000 + i) as u64).collect();
        let mut sheds = 0u64;
        // Typed sheds are the contract: anything else is a bug.
        let mut tolerate = |r: Result<(), ShmemError>, what: &str| match r {
            Ok(()) => {}
            Err(ShmemError::DeadlineExceeded) | Err(ShmemError::Overloaded { .. }) => sheds += 1,
            Err(e) => panic!("{what} failed untyped under overload: {e}"),
        };
        for round in 0..ROUNDS {
            let dest = if family.incast() {
                if me == 0 {
                    // The incast target idles; its service threads are
                    // the ones under test.
                    std::thread::sleep(ms(1));
                    continue;
                }
                0
            } else {
                (me + 1 + round % (HOSTS - 1)) % HOSTS
            };
            let opts = OpOptions::new().deadline(family.deadline());
            tolerate(ctx.put_slice_opts(&sym, 0, &data, dest, opts), "put");
            tolerate(ctx.quiet(), "quiet");
            if family.get_heavy() {
                // Bulk pipelined get under the same tight deadline: the
                // slow port makes the deadline expire mid-window, and
                // the shed must be the typed error with the abandoned
                // sub-requests still accounted for in the trace.
                tolerate(
                    ctx.get_slice_opts::<u64>(&sym, 0, GET_ELEMS, dest, opts)
                        .map(|v| assert_eq!(v.len(), GET_ELEMS, "short get under overload")),
                    "get",
                );
            }
        }
        // Outlive the fault holds so the trace ends on a healthy,
        // quiescent network — the checker's stated precondition.
        std::thread::sleep(ms(200));
        ctx.quiet().ok();
        ctx.barrier_all().expect("drain barrier");
        (Arc::clone(log), sheds)
    })
    .expect("overload world");
    let log = Arc::clone(&results[0].0);
    let typed_sheds = results.iter().map(|(_, s)| s).sum();
    let dropped = log.dropped();
    Outcome { events: log.take(), dropped, typed_sheds }
}

/// Run the trace through the invariant checker; on violation, dump the
/// rendered report plus the full trace to `target/trace-dumps/` and
/// panic with the artifact path.
fn certify_trace(label: &str, outcome: &Outcome, min_get_reqs: usize) {
    assert_eq!(outcome.dropped, 0, "{label}: trace ring buffer wrapped; raise the capacity");
    let report = check(&outcome.events, HOSTS);
    if !report.is_clean() {
        let dir = PathBuf::from("target/trace-dumps");
        std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
        let path = dir.join(format!("{label}.txt"));
        let body = format!(
            "{} violation(s) in {} events\n\n{}\nfull trace:\n{}",
            report.violations.len(),
            outcome.events.len(),
            report.render_violations(),
            render_events(&outcome.events),
        );
        std::fs::write(&path, body).expect("write trace dump");
        panic!(
            "{label}: {} protocol-invariant violation(s); trace dump at {}",
            report.violations.len(),
            path.display()
        );
    }
    // An overload cell whose trace carries no overload evidence isn't
    // testing the machinery — fail loudly rather than certify vacuously.
    assert!(
        report.overload_events_checked > 0,
        "{label}: no queue/credit events in {} events",
        outcome.events.len()
    );
    assert!(
        report.deadline_tx_checked > 0,
        "{label}: no deadline-carrying transmissions in {} events",
        outcome.events.len()
    );
    // Get-heavy cells must actually exercise the pipeline: enough
    // sub-requests certified by the get-resolution invariant.
    assert!(
        report.get_reqs_checked >= min_get_reqs,
        "{label}: only {} of >= {min_get_reqs} get sub-requests certified",
        report.get_reqs_checked
    );
}

fn assert_overload_cell(family: Family, seed: u64) {
    let outcome = run_cell(family, seed);
    let min_get_reqs = if family.get_heavy() { 16 } else { 0 };
    certify_trace(&format!("overload-{}-{seed:#x}", family.label()), &outcome, min_get_reqs);
    eprintln!(
        "overload {}/{seed:#x}: {} events, {} typed sheds",
        family.label(),
        outcome.events.len(),
        outcome.typed_sheds
    );
}

/// The matrix: two seeds through each family, one `#[test]` per cell so
/// the harness parallelizes them and a failure names its coordinates.
macro_rules! overload_matrix {
    ($($name:ident => $family:expr, $seed:expr;)*) => {
        $(
            #[test]
            fn $name() {
                assert_overload_cell($family, $seed);
            }
        )*
    };
}

overload_matrix! {
    overload_slow_port_seed_01 => Family::SlowPort, 0x51_0901;
    overload_slow_port_seed_02 => Family::SlowPort, 0x51_0902;
    overload_queue_shrink_seed_01 => Family::QueueShrink, 0x05_4E01;
    overload_queue_shrink_seed_02 => Family::QueueShrink, 0x05_4E02;
    overload_credit_starve_seed_01 => Family::CreditStarve, 0xC4_ED01;
    overload_credit_starve_seed_02 => Family::CreditStarve, 0xC4_ED02;
    overload_deadline_storm_seed_01 => Family::DeadlineStorm, 0xDE_AD01;
    overload_deadline_storm_seed_02 => Family::DeadlineStorm, 0xDE_AD02;
    overload_get_deadline_storm_seed_01 => Family::GetDeadlineStorm, 0x6E7_DE01;
    overload_get_deadline_storm_seed_02 => Family::GetDeadlineStorm, 0x6E7_DE02;
}

/// Under `--features lockdep` the overload hot paths (credit gates,
/// forward queues, the deadline sweeper) feed the runtime acquisition
/// graph; a full cell must record no rank violations and leave the
/// graph acyclic.
#[cfg(feature = "lockdep")]
#[test]
fn overload_run_records_no_lockdep_violations() {
    use shmem_ntb::net::lockdep;
    let outcome = run_cell(Family::CreditStarve, 0x10CD_0501);
    certify_trace("overload-lockdep-credit-starve", &outcome, 0);
    let violations = lockdep::take_violations();
    assert!(violations.is_empty(), "lockdep violations: {violations:#?}");
    if let Some(cycle) = lockdep::find_cycle() {
        panic!("lock acquisition cycle: {}", cycle.join(" -> "));
    }
    eprintln!("lockdep: {} acquisition edges, no violations", lockdep::edges().len());
}
