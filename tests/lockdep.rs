//! Full-stack lockdep certification (requires `--features lockdep`).
//!
//! Drives puts, gets, AMOs and barriers through a small ring with every
//! instrumented lock site feeding the runtime acquisition graph, then
//! asserts (a) the instrumentation actually fired — the AMO path nests
//! `shmem-amo → shmem-heap → shmem-version` by construction, so the edge
//! set must be non-empty — and (b) no rank violation or acquisition
//! cycle was recorded anywhere in the run.

#![cfg(feature = "lockdep")]

use shmem_ntb::net::lockdep;
use shmem_ntb::shmem::{ShmemConfig, ShmemWorld};

#[test]
fn full_stack_traffic_is_lockdep_clean() {
    const PES: usize = 3;
    const ROUNDS: u64 = 4;
    let cfg = ShmemConfig::fast_sim().with_hosts(PES);
    let counters = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();
        let ring = ctx.calloc_array::<u64>(n).unwrap();
        let counter = ctx.calloc_array::<u64>(1).unwrap();
        for round in 0..ROUNDS {
            let dest = (me + 1) % n;
            ctx.put(&ring, me, round * 100 + me as u64, dest).unwrap();
            ctx.atomic_fetch_add(&counter, 0, 1u64, 0).unwrap();
            ctx.barrier_all().unwrap();
        }
        let left = (me + n - 1) % n;
        assert_eq!(
            ctx.read_local(&ring, left).unwrap(),
            (ROUNDS - 1) * 100 + left as u64,
            "pe {me}: ring put from left neighbor must have landed"
        );
        ctx.read_local(&counter, 0).unwrap()
    })
    .unwrap();
    // Every PE incremented PE 0's counter once per round.
    assert_eq!(counters[0], PES as u64 * ROUNDS);

    let edges = lockdep::edges();
    assert!(
        edges.iter().any(|&(from, to)| from == "shmem-amo" && to == "shmem-heap"),
        "AMO nesting must appear in the acquisition graph; edges: {edges:?}"
    );
    let violations = lockdep::take_violations();
    assert!(violations.is_empty(), "lockdep violations: {violations:#?}");
    if let Some(cycle) = lockdep::find_cycle() {
        panic!("lock acquisition cycle: {}", cycle.join(" -> "));
    }
    eprintln!("lockdep: {} acquisition edges, no violations", edges.len());
}
