//! Seeded chaos runs: a multi-host traffic mix (puts, gets, atomics)
//! driven over links that drop doorbells, corrupt payloads, fail DMA
//! jobs and go dark — asserting that the recovery protocol delivers
//! byte-exact results, executes atomics exactly once, and that the
//! deterministic part of the injection (scripted events, outage
//! windows) reproduces across same-seed runs.
//!
//! Retransmission *timing* is scheduler-dependent, so rate-based
//! injected-event totals can differ between same-seed runs (a retried
//! send adds events to the decision streams). The reproducibility
//! assertions therefore cover the deterministic subset — final memory
//! contents and outage-window counts — as DESIGN.md documents.

use std::sync::Arc;
use std::time::Duration;

use shmem_ntb::net::{AmoOp, DeliveryTarget, NetConfig, RetryPolicy, RingNetwork};
use shmem_ntb::sim::{FaultPlan, Region, TransferMode};

const HOSTS: usize = 3;
const ROUNDS: usize = 6;
const CHUNK: usize = 8 << 10;
/// Counter cell, outside every put range.
const COUNTER_OFF: u64 = 0;

struct ChaosHeap {
    region: Region,
    amo_lock: std::sync::Mutex<()>,
}

impl ChaosHeap {
    fn new() -> Arc<Self> {
        Arc::new(ChaosHeap {
            region: Region::anonymous(1 << 20),
            amo_lock: std::sync::Mutex::new(()),
        })
    }
}

impl DeliveryTarget for ChaosHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> shmem_ntb::sim::Result<()> {
        self.region.write(offset, data)
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> shmem_ntb::sim::Result<()> {
        self.region.read(offset, out)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> shmem_ntb::sim::Result<u64> {
        let _guard = self.amo_lock.lock().unwrap();
        let mut buf = [0u8; 8];
        self.region.read(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        let new = op.apply(old, operand, compare);
        self.region.write(offset, &new.to_le_bytes()[..width])?;
        Ok(old)
    }
}

/// Offset of the (src -> dest) put range; ranges never overlap.
fn put_off(src: usize, dest: usize) -> u64 {
    (64 + (src * HOSTS + dest) * CHUNK) as u64
}

/// Deterministic payload for one (src, dest, round) cell.
fn pattern(src: usize, dest: usize, round: usize) -> Vec<u8> {
    let tag = (src * 7 + dest * 3 + round * 11) as u32;
    (0..CHUNK as u32).map(|i| ((i.wrapping_mul(2654435761) >> 8) as u8) ^ tag as u8).collect()
}

fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_doorbell_drop(0.02)
        .with_payload_corrupt(0.02)
        .with_dma_fail(0.01)
        .with_link_down(1, 10, Duration::from_millis(60))
}

fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(40),
        max_retries: 8,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 3,
    }
}

/// What one chaos run leaves behind.
struct ChaosOutcome {
    /// Final bytes of every (src -> dest) put range, in a fixed order.
    ranges: Vec<Vec<u8>>,
    /// Final value of the contended counter at host 0.
    counter: u64,
    /// Outage windows that fired (deterministic per plan).
    down_windows: u64,
    /// Total injected events (diagnostics; timing-sensitive).
    injected: u64,
    /// Recovery actions observed across all hosts (diagnostics).
    recovered: u64,
}

fn run_chaos(seed: u64) -> ChaosOutcome {
    let cfg = NetConfig::fast(HOSTS).with_retry(chaos_retry()).with_faults(chaos_plan(seed));
    let net = RingNetwork::build(cfg).unwrap();
    let heaps: Vec<Arc<ChaosHeap>> = (0..HOSTS).map(|_| ChaosHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }

    for round in 0..ROUNDS {
        // Every host puts a fresh pattern to both peers; modes alternate
        // so the DMA-fault and memcpy paths are both exercised.
        for src in 0..HOSTS {
            for hop in 1..HOSTS {
                let dest = (src + hop) % HOSTS;
                let mode = if (round + src + hop) % 2 == 0 {
                    TransferMode::Dma
                } else {
                    TransferMode::Memcpy
                };
                let data = pattern(src, dest, round);
                net.node(src).put_bytes(dest, put_off(src, dest), &data, mode).unwrap();
            }
        }
        // Hosts 1 and 2 bump the shared counter at host 0; the AMO cache
        // must keep retransmitted requests exactly-once.
        for src in 1..HOSTS {
            net.node(src).amo(0, AmoOp::FetchAdd, COUNTER_OFF, 8, 1, 0).unwrap();
        }
        // Same-target rounds conflict, so order them with quiet() — the
        // OpenSHMEM contract for overlapping puts.
        for src in 0..HOSTS {
            net.node(src).quiet().unwrap_or_else(|e| panic!("round {round} quiet at {src}: {e}"));
        }
    }

    // Remote reads see the settled state through the same lossy links.
    for src in 0..HOSTS {
        let dest = (src + 1) % HOSTS;
        let got = net
            .node(src)
            .get_bytes(dest, put_off(src, dest), CHUNK as u64, TransferMode::Dma)
            .unwrap();
        assert_eq!(got, pattern(src, dest, ROUNDS - 1), "get {src} <- {dest} must be byte-exact");
    }

    for node in net.nodes() {
        let errs = node.take_errors();
        assert!(errs.is_empty(), "host {} service errors: {errs:?}", node.host_id());
    }

    let mut ranges = Vec::new();
    for src in 0..HOSTS {
        for hop in 1..HOSTS {
            let dest = (src + hop) % HOSTS;
            ranges.push(heaps[dest].region.read_vec(put_off(src, dest), CHUNK as u64).unwrap());
        }
    }
    let mut counter = [0u8; 8];
    heaps[0].region.read(COUNTER_OFF, &mut counter).unwrap();
    let fault_totals = net.fault_stats_total();
    let recovered = (0..HOSTS).map(|i| net.node(i).stats().recovery_total()).sum();
    ChaosOutcome {
        ranges,
        counter: u64::from_le_bytes(counter),
        down_windows: fault_totals.link_down_windows,
        injected: fault_totals.total(),
        recovered,
    }
}

fn assert_chaos_seed(seed: u64) {
    let first = run_chaos(seed);

    // Byte-exactness: every put range holds exactly the final round's
    // pattern — no torn, stale or misplaced chunk anywhere.
    let mut idx = 0;
    for src in 0..HOSTS {
        for hop in 1..HOSTS {
            let dest = (src + hop) % HOSTS;
            assert_eq!(
                first.ranges[idx],
                pattern(src, dest, ROUNDS - 1),
                "range {src} -> {dest} differs from the expected final pattern"
            );
            idx += 1;
        }
    }
    // Exactly-once atomics despite retransmission.
    assert_eq!(
        first.counter,
        (HOSTS as u64 - 1) * ROUNDS as u64,
        "fetch-add applied exactly once each"
    );
    // The plan's single outage window fired.
    assert_eq!(first.down_windows, 1, "exactly one scripted outage window");

    // Same-seed reproducibility of the deterministic subset.
    let second = run_chaos(seed);
    assert_eq!(first.ranges, second.ranges, "same seed must leave identical memory");
    assert_eq!(first.counter, second.counter);
    assert_eq!(first.down_windows, second.down_windows);

    eprintln!(
        "chaos seed {seed:#x}: injected {} events (run1) / {} (run2), {} recovery actions (run1)",
        first.injected, second.injected, first.recovered
    );
}

#[test]
fn chaos_seed_a_is_byte_exact_and_reproducible() {
    assert_chaos_seed(0x00C0_FFEE);
}

#[test]
fn chaos_seed_b_is_byte_exact_and_reproducible() {
    assert_chaos_seed(42);
}
