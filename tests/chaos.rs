//! Seeded chaos runs: a multi-host traffic mix (puts, gets, atomics)
//! driven over links that drop doorbells, corrupt payloads, fail DMA
//! jobs and go dark — asserting that the recovery protocol delivers
//! byte-exact results, executes atomics exactly once, and that the
//! deterministic part of the injection (scripted events, outage
//! windows) reproduces across same-seed runs.
//!
//! Every run records a full event trace and puts it through the
//! protocol-invariant checker (`shmem_ntb::net::check`): puts resolved
//! exactly once, AMOs applied exactly once, get chunks tiling their
//! request, no transmit on a down link. A violation writes the
//! rendered trace window to `target/trace-dumps/<label>.txt` before
//! panicking, so the offending interleaving can be read offline.
//!
//! The seed matrix at the bottom sweeps ≥8 seeds through each fault
//! family (doorbell-drop, payload-corruption, link-flap); the two
//! legacy "mixed" seeds additionally assert same-seed reproducibility.
//!
//! Retransmission *timing* is scheduler-dependent, so rate-based
//! injected-event totals can differ between same-seed runs (a retried
//! send adds events to the decision streams). The reproducibility
//! assertions therefore cover the deterministic subset — final memory
//! contents and outage-window counts — as DESIGN.md documents.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use shmem_ntb::net::{
    check, AmoOp, DeliveryTarget, HeartbeatConfig, NetConfig, RetryPolicy, RingNetwork, Topology,
};
use shmem_ntb::sim::{render_events, FaultPlan, Region, TraceEvent, TransferMode};

const HOSTS: usize = 3;
const ROUNDS: usize = 6;
const CHUNK: usize = 8 << 10;
/// Counter cell, outside every put range.
const COUNTER_OFF: u64 = 0;

struct ChaosHeap {
    region: Region,
    amo_lock: std::sync::Mutex<()>,
}

impl ChaosHeap {
    fn new() -> Arc<Self> {
        Arc::new(ChaosHeap {
            region: Region::anonymous(1 << 20),
            amo_lock: std::sync::Mutex::new(()),
        })
    }
}

impl DeliveryTarget for ChaosHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> shmem_ntb::sim::Result<()> {
        self.region.write(offset, data)
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> shmem_ntb::sim::Result<()> {
        self.region.read(offset, out)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> shmem_ntb::sim::Result<u64> {
        let _guard = self.amo_lock.lock().unwrap();
        let mut buf = [0u8; 8];
        self.region.read(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        let new = op.apply(old, operand, compare);
        self.region.write(offset, &new.to_le_bytes()[..width])?;
        Ok(old)
    }
}

/// Offset of the (src -> dest) put range; ranges never overlap.
fn put_off(src: usize, dest: usize) -> u64 {
    (64 + (src * HOSTS + dest) * CHUNK) as u64
}

/// Deterministic payload for one (src, dest, round) cell.
fn pattern(src: usize, dest: usize, round: usize) -> Vec<u8> {
    let tag = (src * 7 + dest * 3 + round * 11) as u32;
    (0..CHUNK as u32).map(|i| ((i.wrapping_mul(2654435761) >> 8) as u8) ^ tag as u8).collect()
}

/// A fault family: one axis of the chaos matrix. Each family stresses
/// one injection mechanism hard instead of blending them, so a
/// regression in (say) CRC rejection shows up as a corruption-family
/// failure rather than noise in a mixed run.
#[derive(Clone, Copy, Debug)]
enum Family {
    /// Legacy blend: a little of everything plus one outage window.
    Mixed,
    /// Heavy doorbell loss: every retransmission path fires.
    DoorbellDrop,
    /// Heavy payload corruption: CRC rejection and resend.
    Corruption,
    /// Two scripted outage windows, one per link direction.
    LinkFlap,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::Mixed => "mixed",
            Family::DoorbellDrop => "doorbell-drop",
            Family::Corruption => "corruption",
            Family::LinkFlap => "link-flap",
        }
    }

    fn plan(self, seed: u64) -> FaultPlan {
        let base = FaultPlan::none().with_seed(seed);
        match self {
            Family::Mixed => base
                .with_doorbell_drop(0.02)
                .with_payload_corrupt(0.02)
                .with_dma_fail(0.01)
                .with_link_down(1, 10, Duration::from_millis(60)),
            Family::DoorbellDrop => base.with_doorbell_drop(0.06).with_dma_fail(0.01),
            Family::Corruption => base.with_payload_corrupt(0.06).with_dma_fail(0.01),
            Family::LinkFlap => base
                .with_doorbell_drop(0.01)
                .with_link_down(0, 8, Duration::from_millis(40))
                .with_link_down(1, 24, Duration::from_millis(40)),
        }
    }

    /// Scripted outage windows the plan must fire (deterministic).
    fn expected_windows(self) -> u64 {
        match self {
            Family::Mixed => 1,
            Family::DoorbellDrop | Family::Corruption => 0,
            Family::LinkFlap => 2,
        }
    }
}

fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(40),
        max_retries: 8,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 3,
    }
}

/// What one chaos run leaves behind.
struct ChaosOutcome {
    /// Final bytes of every (src -> dest) put range, in a fixed order.
    ranges: Vec<Vec<u8>>,
    /// Final value of the contended counter at host 0.
    counter: u64,
    /// Outage windows that fired (deterministic per plan).
    down_windows: u64,
    /// Total injected events (diagnostics; timing-sensitive).
    injected: u64,
    /// Recovery actions observed across all hosts (diagnostics).
    recovered: u64,
    /// The full merged event trace of the run.
    events: Vec<TraceEvent>,
    /// Events lost to ring-buffer wrap (must be 0 for certification).
    dropped: u64,
}

fn run_chaos(family: Family, seed: u64) -> ChaosOutcome {
    run_chaos_mode(family, seed, false)
}

/// `coalesced` runs the same traffic mix through an explicitly tight
/// transmit ring (4 slots, batch 4) with every put's doorbell deferred —
/// quiet() flushes whole batches, so slot reuse, wrap-around and the
/// coalesced-doorbell recovery paths are all under fire.
fn run_chaos_mode(family: Family, seed: u64, coalesced: bool) -> ChaosOutcome {
    let mut cfg = NetConfig::fast(HOSTS).with_retry(chaos_retry()).with_faults(family.plan(seed));
    if coalesced {
        cfg = cfg.with_coalescing(true).with_tx_ring(4, 4);
    }
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps: Vec<Arc<ChaosHeap>> = (0..HOSTS).map(|_| ChaosHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }

    for round in 0..ROUNDS {
        // Every host puts a fresh pattern to both peers; modes alternate
        // so the DMA-fault and memcpy paths are both exercised.
        for src in 0..HOSTS {
            for hop in 1..HOSTS {
                let dest = (src + hop) % HOSTS;
                let mode = if (round + src + hop) % 2 == 0 {
                    TransferMode::Dma
                } else {
                    TransferMode::Memcpy
                };
                let data = pattern(src, dest, round);
                net.node(src)
                    .put_bytes_coalesced(dest, put_off(src, dest), &data, mode, coalesced)
                    .unwrap();
            }
        }
        // Hosts 1 and 2 bump the shared counter at host 0; the AMO cache
        // must keep retransmitted requests exactly-once.
        for src in 1..HOSTS {
            net.node(src).amo(0, AmoOp::FetchAdd, COUNTER_OFF, 8, 1, 0).unwrap();
        }
        // Same-target rounds conflict, so order them with quiet() — the
        // OpenSHMEM contract for overlapping puts.
        for src in 0..HOSTS {
            net.node(src).quiet().unwrap_or_else(|e| panic!("round {round} quiet at {src}: {e}"));
        }
    }

    // Remote reads see the settled state through the same lossy links.
    for src in 0..HOSTS {
        let dest = (src + 1) % HOSTS;
        let got = net
            .node(src)
            .get_bytes(dest, put_off(src, dest), CHUNK as u64, TransferMode::Dma)
            .unwrap();
        assert_eq!(got, pattern(src, dest, ROUNDS - 1), "get {src} <- {dest} must be byte-exact");
    }

    for node in net.nodes() {
        let errs = node.take_errors();
        assert!(errs.is_empty(), "host {} service errors: {errs:?}", node.host_id());
    }

    let mut ranges = Vec::new();
    for src in 0..HOSTS {
        for hop in 1..HOSTS {
            let dest = (src + hop) % HOSTS;
            ranges.push(heaps[dest].region.read_vec(put_off(src, dest), CHUNK as u64).unwrap());
        }
    }
    let mut counter = [0u8; 8];
    heaps[0].region.read(COUNTER_OFF, &mut counter).unwrap();
    let fault_totals = net.fault_stats_total();
    let recovered = (0..HOSTS).map(|i| net.node(i).stats().recovery_total()).sum();
    let dropped = net.event_log().dropped();
    ChaosOutcome {
        ranges,
        counter: u64::from_le_bytes(counter),
        down_windows: fault_totals.link_down_windows,
        injected: fault_totals.total(),
        recovered,
        events: net.take_events(),
        dropped,
    }
}

/// Run the trace through the invariant checker; on violation, dump the
/// rendered report plus the full trace to `target/trace-dumps/` and
/// panic with the artifact path.
fn certify_trace(label: &str, outcome: &ChaosOutcome) {
    assert_eq!(outcome.dropped, 0, "{label}: trace ring buffer wrapped; raise the capacity");
    let report = check(&outcome.events, HOSTS);
    if report.is_clean() {
        return;
    }
    let dir = PathBuf::from("target/trace-dumps");
    std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
    let path = dir.join(format!("{label}.txt"));
    let body = format!(
        "{} violation(s) in {} events\n\n{}\nfull trace:\n{}",
        report.violations.len(),
        outcome.events.len(),
        report.render_violations(),
        render_events(&outcome.events),
    );
    std::fs::write(&path, body).expect("write trace dump");
    panic!(
        "{label}: {} protocol-invariant violation(s); trace dump at {}",
        report.violations.len(),
        path.display()
    );
}

/// One matrix cell: byte-exact memory, exactly-once atomics, the
/// family's scripted outage count, and a checker-clean trace.
fn assert_chaos_checked(family: Family, seed: u64) {
    assert_chaos_checked_mode(family, seed, false)
}

fn assert_chaos_checked_mode(family: Family, seed: u64, coalesced: bool) {
    let outcome = run_chaos_mode(family, seed, coalesced);
    let mut idx = 0;
    for src in 0..HOSTS {
        for hop in 1..HOSTS {
            let dest = (src + hop) % HOSTS;
            assert_eq!(
                outcome.ranges[idx],
                pattern(src, dest, ROUNDS - 1),
                "{}/{seed:#x}: range {src} -> {dest} differs from the final pattern",
                family.label(),
            );
            idx += 1;
        }
    }
    assert_eq!(
        outcome.counter,
        (HOSTS as u64 - 1) * ROUNDS as u64,
        "{}/{seed:#x}: fetch-add applied exactly once each",
        family.label(),
    );
    assert_eq!(
        outcome.down_windows,
        family.expected_windows(),
        "{}/{seed:#x}: scripted outage windows",
        family.label(),
    );
    let tag = if coalesced { "-coalesced" } else { "" };
    certify_trace(&format!("chaos-{}{tag}-{seed:#x}", family.label()), &outcome);
    eprintln!(
        "chaos {}{tag}/{seed:#x}: {} events, injected {}, recovered {}",
        family.label(),
        outcome.events.len(),
        outcome.injected,
        outcome.recovered
    );
}

/// The legacy deep check: everything in [`assert_chaos_checked`] plus
/// same-seed reproducibility of the deterministic subset.
fn assert_chaos_seed(seed: u64) {
    let first = run_chaos(Family::Mixed, seed);

    // Byte-exactness: every put range holds exactly the final round's
    // pattern — no torn, stale or misplaced chunk anywhere.
    let mut idx = 0;
    for src in 0..HOSTS {
        for hop in 1..HOSTS {
            let dest = (src + hop) % HOSTS;
            assert_eq!(
                first.ranges[idx],
                pattern(src, dest, ROUNDS - 1),
                "range {src} -> {dest} differs from the expected final pattern"
            );
            idx += 1;
        }
    }
    // Exactly-once atomics despite retransmission.
    assert_eq!(
        first.counter,
        (HOSTS as u64 - 1) * ROUNDS as u64,
        "fetch-add applied exactly once each"
    );
    // The plan's single outage window fired.
    assert_eq!(first.down_windows, 1, "exactly one scripted outage window");
    certify_trace(&format!("chaos-mixed-{seed:#x}-run1"), &first);

    // Same-seed reproducibility of the deterministic subset.
    let second = run_chaos(Family::Mixed, seed);
    assert_eq!(first.ranges, second.ranges, "same seed must leave identical memory");
    assert_eq!(first.counter, second.counter);
    assert_eq!(first.down_windows, second.down_windows);
    certify_trace(&format!("chaos-mixed-{seed:#x}-run2"), &second);

    eprintln!(
        "chaos seed {seed:#x}: injected {} events (run1) / {} (run2), {} recovery actions (run1)",
        first.injected, second.injected, first.recovered
    );
}

#[test]
fn chaos_seed_a_is_byte_exact_and_reproducible() {
    assert_chaos_seed(0x00C0_FFEE);
}

#[test]
fn chaos_seed_b_is_byte_exact_and_reproducible() {
    assert_chaos_seed(42);
}

/// The seed matrix: 8 seeds through each of the three focused fault
/// families, every run certified by the invariant checker. One `#[test]`
/// per cell so the harness parallelizes them and a failure names its
/// exact (family, seed) coordinates.
macro_rules! chaos_matrix {
    ($($name:ident => $family:expr, $seed:expr;)*) => {
        $(
            #[test]
            fn $name() {
                assert_chaos_checked($family, $seed);
            }
        )*
    };
}

/// Explicitly coalesced cells: the deferred-doorbell path (tight
/// 4-slot ring, batches flushed by quiet) through two fault families,
/// two seeds each. The checker's slot-coalescing invariant certifies
/// every one of these traces.
macro_rules! chaos_matrix_coalesced {
    ($($name:ident => $family:expr, $seed:expr;)*) => {
        $(
            #[test]
            fn $name() {
                assert_chaos_checked_mode($family, $seed, true);
            }
        )*
    };
}

chaos_matrix_coalesced! {
    chaos_coalesced_doorbell_drop_seed_01 => Family::DoorbellDrop, 0xC0A_0B01;
    chaos_coalesced_doorbell_drop_seed_02 => Family::DoorbellDrop, 0xC0A_0B02;
    chaos_coalesced_corruption_seed_01 => Family::Corruption, 0xC0A_4401;
    chaos_coalesced_corruption_seed_02 => Family::Corruption, 0xC0A_4402;
}

chaos_matrix! {
    chaos_doorbell_drop_seed_01 => Family::DoorbellDrop, 0xD0_0B01;
    chaos_doorbell_drop_seed_02 => Family::DoorbellDrop, 0xD0_0B02;
    chaos_doorbell_drop_seed_03 => Family::DoorbellDrop, 0xD0_0B03;
    chaos_doorbell_drop_seed_04 => Family::DoorbellDrop, 0xD0_0B04;
    chaos_doorbell_drop_seed_05 => Family::DoorbellDrop, 0xD0_0B05;
    chaos_doorbell_drop_seed_06 => Family::DoorbellDrop, 0xD0_0B06;
    chaos_doorbell_drop_seed_07 => Family::DoorbellDrop, 0xD0_0B07;
    chaos_doorbell_drop_seed_08 => Family::DoorbellDrop, 0xD0_0B08;
    chaos_corruption_seed_01 => Family::Corruption, 0xC0_4401;
    chaos_corruption_seed_02 => Family::Corruption, 0xC0_4402;
    chaos_corruption_seed_03 => Family::Corruption, 0xC0_4403;
    chaos_corruption_seed_04 => Family::Corruption, 0xC0_4404;
    chaos_corruption_seed_05 => Family::Corruption, 0xC0_4405;
    chaos_corruption_seed_06 => Family::Corruption, 0xC0_4406;
    chaos_corruption_seed_07 => Family::Corruption, 0xC0_4407;
    chaos_corruption_seed_08 => Family::Corruption, 0xC0_4408;
    chaos_link_flap_seed_01 => Family::LinkFlap, 0xF1_A901;
    chaos_link_flap_seed_02 => Family::LinkFlap, 0xF1_A902;
    chaos_link_flap_seed_03 => Family::LinkFlap, 0xF1_A903;
    chaos_link_flap_seed_04 => Family::LinkFlap, 0xF1_A904;
    chaos_link_flap_seed_05 => Family::LinkFlap, 0xF1_A905;
    chaos_link_flap_seed_06 => Family::LinkFlap, 0xF1_A906;
    chaos_link_flap_seed_07 => Family::LinkFlap, 0xF1_A907;
    chaos_link_flap_seed_08 => Family::LinkFlap, 0xF1_A908;
}

// ---------------------------------------------------------------------------
// Get-pipeline chaos: bulk pipelined gets under fire.
// ---------------------------------------------------------------------------

/// Payload each host exports for the get-window cells.
const GET_LEN: usize = 64 << 10;
/// Sub-request size for the get-window cells: 64 KiB / 4 KiB = 16
/// sub-requests per get, 4 in flight, so every fault lands mid-window.
const GET_SUB: u64 = 4 << 10;
const GET_ROUNDS: usize = 4;

/// Deterministic exported bytes of one host's get range.
fn get_pattern(host: usize) -> Vec<u8> {
    (0..GET_LEN as u32)
        .map(|i| ((i.wrapping_mul(0x9E37_79B9) >> 7) as u8) ^ (host as u8).wrapping_mul(0x35))
        .collect()
}

fn get_window_net(family: Family, seed: u64) -> (RingNetwork, Vec<Arc<ChaosHeap>>) {
    let cfg = NetConfig::fast(HOSTS)
        .with_retry(chaos_retry())
        .with_faults(family.plan(seed))
        .with_get_pipeline(GET_SUB, 4);
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps: Vec<Arc<ChaosHeap>> = (0..HOSTS).map(|_| ChaosHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
        heap.region.write(64, &get_pattern(i)).unwrap();
    }
    (net, heaps)
}

/// One get-window cell: every host pulls every peer's 16-sub-request
/// range for several rounds while the family's faults hit the links
/// mid-window. Results must be byte-exact, no service thread may record
/// an error, and the trace must satisfy the checker's get-resolution
/// invariant (every sub-request resolved exactly once, fills tiling
/// their request) with the full sub-request count accounted for.
fn assert_get_window_chaos(family: Family, seed: u64) {
    let (net, _heaps) = get_window_net(family, seed);
    for round in 0..GET_ROUNDS {
        for src in 0..HOSTS {
            for hop in 1..HOSTS {
                let dest = (src + hop) % HOSTS;
                let mode = if (round + src + hop) % 2 == 0 {
                    TransferMode::Dma
                } else {
                    TransferMode::Memcpy
                };
                let got = net.node(src).get_bytes(dest, 64, GET_LEN as u64, mode).unwrap();
                assert_eq!(
                    got,
                    get_pattern(dest),
                    "{}/{seed:#x}: round {round} get {src} <- {dest} must be byte-exact",
                    family.label(),
                );
            }
        }
    }
    for node in net.nodes() {
        let errs = node.take_errors();
        assert!(errs.is_empty(), "host {} service errors: {errs:?}", node.host_id());
    }
    let events = net.take_events();
    let dropped = net.event_log().dropped();
    let label = format!("chaos-get-window-{}-{seed:#x}", family.label());
    assert_eq!(dropped, 0, "{label}: trace ring buffer wrapped; raise the capacity");
    let report = check(&events, HOSTS);
    if !report.is_clean() {
        let dir = PathBuf::from("target/trace-dumps");
        std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
        let path = dir.join(format!("{label}.txt"));
        std::fs::write(&path, render_events(&events)).expect("write trace dump");
        panic!(
            "{label}: {} violation(s); trace dump at {}\n{}",
            report.violations.len(),
            path.display(),
            report.render_violations()
        );
    }
    // Every (src, peer, round) get tiles into GET_LEN / GET_SUB
    // sub-requests; a lower count means the pipeline never engaged and
    // the cell certified vacuously.
    let expected = HOSTS * (HOSTS - 1) * GET_ROUNDS * (GET_LEN / GET_SUB as usize);
    assert!(
        report.get_reqs_checked >= expected,
        "{label}: only {} of >= {expected} sub-requests certified",
        report.get_reqs_checked
    );
    eprintln!(
        "{label}: {} events, {} sub-requests certified",
        events.len(),
        report.get_reqs_checked
    );
}

/// Responder-crash cell: a requester hammers pipelined gets while the
/// responder dies mid-window. In-flight sub-requests must resolve as
/// typed errors in bounded time (retry budget, not a hang), the
/// abandoned window must still satisfy the get-resolution invariant,
/// and traffic to the surviving peer must stay byte-exact.
fn assert_get_window_responder_crash(seed: u64) {
    const VICTIM: usize = 1;
    let (net, _heaps) = get_window_net(Family::DoorbellDrop, seed);
    std::thread::scope(|s| {
        s.spawn(|| {
            // Land the crash mid-run, while PE 0 has a window in flight.
            std::thread::sleep(Duration::from_millis(30));
            net.node(VICTIM).crash();
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut completed = 0usize;
        loop {
            assert!(
                std::time::Instant::now() < deadline,
                "get at the crashed responder neither completed nor failed in 10s"
            );
            match net.node(0).get_bytes(VICTIM, 64, GET_LEN as u64, TransferMode::Dma) {
                Ok(got) => {
                    assert_eq!(got, get_pattern(VICTIM), "pre-crash get must be byte-exact");
                    completed += 1;
                }
                Err(_) => break, // typed failure after the retry budget — the contract
            }
        }
        eprintln!("get-window-crash/{seed:#x}: {completed} gets completed before the crash bit");
    });
    // The surviving peer is untouched.
    let got = net.node(0).get_bytes(2, 64, GET_LEN as u64, TransferMode::Memcpy).unwrap();
    assert_eq!(got, get_pattern(2), "survivor get must stay byte-exact");
    let events = net.take_events();
    let dropped = net.event_log().dropped();
    let label = format!("chaos-get-window-crash-{seed:#x}");
    assert_eq!(dropped, 0, "{label}: trace ring buffer wrapped; raise the capacity");
    let report = check(&events, HOSTS);
    if !report.is_clean() {
        let dir = PathBuf::from("target/trace-dumps");
        std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
        let path = dir.join(format!("{label}.txt"));
        std::fs::write(&path, render_events(&events)).expect("write trace dump");
        panic!(
            "{label}: {} violation(s); trace dump at {}\n{}",
            report.violations.len(),
            path.display(),
            report.render_violations()
        );
    }
    assert!(report.get_reqs_checked > 0, "{label}: no sub-requests certified");
}

macro_rules! get_window_matrix {
    ($($name:ident => $family:expr, $seed:expr;)*) => {
        $(
            #[test]
            fn $name() {
                assert_get_window_chaos($family, $seed);
            }
        )*
    };
}

get_window_matrix! {
    get_window_doorbell_drop_seed_01 => Family::DoorbellDrop, 0x6E7_0B01;
    get_window_doorbell_drop_seed_02 => Family::DoorbellDrop, 0x6E7_0B02;
    get_window_corruption_seed_01 => Family::Corruption, 0x6E7_4401;
    get_window_corruption_seed_02 => Family::Corruption, 0x6E7_4402;
    get_window_link_flap_seed_01 => Family::LinkFlap, 0x6E7_A901;
    get_window_link_flap_seed_02 => Family::LinkFlap, 0x6E7_A902;
}

#[test]
fn get_window_responder_crash_seed_01() {
    assert_get_window_responder_crash(0x6E7_DEAD);
}

#[test]
fn get_window_responder_crash_seed_02() {
    assert_get_window_responder_crash(0x6E7_DEAE);
}

// ---------------------------------------------------------------------------
// Torus chaos: link loss on a 4x4 torus at 16 PEs. Antipodal puts cross
// four links through the forwarding path, so the scripted outages land
// under *routed* traffic, not just neighbor exchanges — the failure mode
// the ring matrix above cannot reach.
// ---------------------------------------------------------------------------

const TORUS_HOSTS: usize = 16;
const TORUS_CHUNK: usize = 2 << 10;
const TORUS_ROUNDS: usize = 3;

/// Offset of host `src`'s put range at its antipode. The src -> src+8
/// map is a bijection, so keying the range by src alone is collision-free.
fn torus_put_off(src: usize) -> u64 {
    (64 + src * TORUS_CHUNK) as u64
}

/// Deterministic payload for one (src, round) antipodal put.
fn torus_pattern(src: usize, round: usize) -> Vec<u8> {
    let tag = (src * 13 + round * 29) as u32;
    (0..TORUS_CHUNK as u32)
        .map(|i| ((i.wrapping_mul(2_246_822_519) >> 9) as u8) ^ tag as u8)
        .collect()
}

/// Link-loss on a 4x4 torus: every host puts its pattern to the PE four
/// hops away while two scripted outage windows take links at host 0's
/// corner down mid-run (links 0 and 1 in cabling order — the AMO hot
/// spot, so both windows are guaranteed doorbell traffic to trigger on).
/// Certification demands a checker-clean trace *plus* evidence floors
/// proving the run exercised routed puts, AMOs and gets — a vacuously
/// empty trace would also be "clean".
fn assert_torus_link_loss(seed: u64) {
    let plan = FaultPlan::none()
        .with_seed(seed)
        .with_doorbell_drop(0.01)
        .with_link_down(0, 2, Duration::from_millis(40))
        .with_link_down(1, 6, Duration::from_millis(40));
    let cfg = NetConfig::fast(TORUS_HOSTS)
        .with_topology(Topology::torus(4, 4))
        .with_retry(chaos_retry())
        // Static membership: byte-exactness here must come from the
        // retry protocol riding out the outage, not from the detector
        // rerouting around a link it happened to declare dead.
        .with_heartbeat(HeartbeatConfig::disabled())
        .with_faults(plan);
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps: Vec<Arc<ChaosHeap>> = (0..TORUS_HOSTS).map(|_| ChaosHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }

    for round in 0..TORUS_ROUNDS {
        for src in 0..TORUS_HOSTS {
            let dest = (src + TORUS_HOSTS / 2) % TORUS_HOSTS;
            let mode =
                if (round + src) % 2 == 0 { TransferMode::Dma } else { TransferMode::Memcpy };
            net.node(src)
                .put_bytes(dest, torus_put_off(src), &torus_pattern(src, round), mode)
                .unwrap();
        }
        // Every other host bumps the shared counter at host 0 — routed
        // AMOs from up to four hops out, exactly-once under retries.
        for src in 1..TORUS_HOSTS {
            net.node(src).amo(0, AmoOp::FetchAdd, COUNTER_OFF, 8, 1, 0).unwrap();
        }
        for src in 0..TORUS_HOSTS {
            net.node(src)
                .quiet()
                .unwrap_or_else(|e| panic!("torus round {round} quiet at {src}: {e}"));
        }
    }

    // A few hosts read their settled range back from the antipode: gets
    // traverse the same forwarding path in both directions.
    for src in 0..4 {
        let dest = (src + TORUS_HOSTS / 2) % TORUS_HOSTS;
        let got = net
            .node(src)
            .get_bytes(dest, torus_put_off(src), TORUS_CHUNK as u64, TransferMode::Dma)
            .unwrap();
        assert_eq!(
            got,
            torus_pattern(src, TORUS_ROUNDS - 1),
            "torus get {src} <- {dest} must be byte-exact"
        );
    }

    for node in net.nodes() {
        let errs = node.take_errors();
        assert!(errs.is_empty(), "host {} service errors: {errs:?}", node.host_id());
    }
    for src in 0..TORUS_HOSTS {
        let dest = (src + TORUS_HOSTS / 2) % TORUS_HOSTS;
        let range = heaps[dest].region.read_vec(torus_put_off(src), TORUS_CHUNK as u64).unwrap();
        assert_eq!(
            range,
            torus_pattern(src, TORUS_ROUNDS - 1),
            "torus/{seed:#x}: range {src} -> {dest} differs from the final pattern"
        );
    }
    let mut counter = [0u8; 8];
    heaps[0].region.read(COUNTER_OFF, &mut counter).unwrap();
    assert_eq!(
        u64::from_le_bytes(counter),
        (TORUS_HOSTS as u64 - 1) * TORUS_ROUNDS as u64,
        "torus/{seed:#x}: fetch-add applied exactly once each"
    );
    let fault_totals = net.fault_stats_total();
    assert_eq!(fault_totals.link_down_windows, 2, "torus/{seed:#x}: scripted outage windows");

    let events = net.take_events();
    let dropped = net.event_log().dropped();
    let label = format!("chaos-torus-link-loss-{seed:#x}");
    assert_eq!(dropped, 0, "{label}: trace ring buffer wrapped; raise the capacity");
    let report = check(&events, TORUS_HOSTS);
    if !report.is_clean() {
        let dir = PathBuf::from("target/trace-dumps");
        std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
        let path = dir.join(format!("{label}.txt"));
        std::fs::write(&path, render_events(&events)).expect("write trace dump");
        panic!(
            "{label}: {} violation(s); trace dump at {}\n{}",
            report.violations.len(),
            path.display(),
            report.render_violations()
        );
    }
    // Evidence floors: the clean verdict must rest on the traffic the
    // run was built to generate.
    assert!(
        report.puts_checked >= TORUS_HOSTS * TORUS_ROUNDS,
        "{label}: only {} put chunks certified, need >= {}",
        report.puts_checked,
        TORUS_HOSTS * TORUS_ROUNDS
    );
    assert!(
        report.amos_checked >= (TORUS_HOSTS - 1) * TORUS_ROUNDS,
        "{label}: only {} AMOs certified, need >= {}",
        report.amos_checked,
        (TORUS_HOSTS - 1) * TORUS_ROUNDS
    );
    assert!(report.gets_checked >= 4, "{label}: only {} gets certified", report.gets_checked);
    eprintln!(
        "chaos torus/{seed:#x}: {} events, {} puts, {} amos, {} gets certified",
        report.events, report.puts_checked, report.amos_checked, report.gets_checked
    );
}

#[test]
fn torus_link_loss_seed_01() {
    assert_torus_link_loss(0x70_5501);
}

#[test]
fn torus_link_loss_seed_02() {
    assert_torus_link_loss(0x70_5502);
}

/// Under `--features lockdep` the instrumented lock sites feed the
/// runtime acquisition graph; a full mixed-fault run must record no
/// rank violations and leave the graph acyclic. Tests share one
/// process, so violations recorded by any concurrently-running chaos
/// test surface here too — which is the point: service threads swallow
/// panics, so this drain is where lockdep fails loudly.
#[cfg(feature = "lockdep")]
#[test]
fn chaos_run_records_no_lockdep_violations() {
    use shmem_ntb::net::lockdep;
    let outcome = run_chaos(Family::Mixed, 0x10CD_E401);
    certify_trace("chaos-lockdep-mixed", &outcome);
    let violations = lockdep::take_violations();
    assert!(violations.is_empty(), "lockdep violations: {violations:#?}");
    if let Some(cycle) = lockdep::find_cycle() {
        panic!("lock acquisition cycle: {}", cycle.join(" -> "));
    }
    eprintln!("lockdep: {} acquisition edges, no violations", lockdep::edges().len());
}
