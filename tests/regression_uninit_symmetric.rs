//! Regression tests for the uninitialized-symmetric-memory class of bug.
//!
//! `shmem_malloc` (like the spec) does not zero recycled heap space, so a
//! control word allocated after a free can contain stale data from an
//! earlier collective. This bit the Monte-Carlo example: a lock-protected
//! cursor read back a stale hit count from a freed `allreduce` scratch
//! buffer. The fix is `shmem_calloc` (zero + barrier) and a `lock_alloc`
//! that publishes the zeroed lock word before anyone can contend.

use rand::prelude::*;
use rand::rngs::StdRng;
use shmem_ntb::shmem::{CmpOp, ReduceOp, ShmemConfig, ShmemWorld};

#[test]
fn malloc_recycled_memory_is_stale_and_calloc_is_not() {
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(2), |ctx| {
        // Dirty a region, free it.
        let a = ctx.malloc_array::<u64>(4).unwrap();
        ctx.write_local_slice(&a, 0, &[0xDEAD, 0xBEEF, 0xFEED, 0xFACE]).unwrap();
        ctx.free_array(a).unwrap();
        // malloc reuses it *without* zeroing (spec behaviour).
        let b = ctx.malloc_array::<u64>(4).unwrap();
        assert_eq!(b.addr().offset(), a.addr().offset(), "hole reused");
        assert_eq!(
            ctx.read_local_slice::<u64>(&b, 0, 4).unwrap(),
            vec![0xDEAD, 0xBEEF, 0xFEED, 0xFACE],
            "malloc must not hide the stale bytes (documented spec behaviour)"
        );
        ctx.free_array(b).unwrap();
        // calloc gives zeroed memory even when recycling.
        let c = ctx.calloc_array::<u64>(4).unwrap();
        assert_eq!(c.addr().offset(), a.addr().offset(), "hole reused again");
        assert_eq!(ctx.read_local_slice::<u64>(&c, 0, 4).unwrap(), vec![0; 4]);
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

#[test]
fn lock_alloc_is_safe_on_recycled_dirty_memory() {
    ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(3), |ctx| {
        // Make the next allocation land on dirty recycled bytes that look
        // like a held lock.
        let dirty = ctx.malloc_array::<u64>(1).unwrap();
        ctx.write_local(&dirty, 0, u64::MAX).unwrap();
        ctx.barrier_all().unwrap();
        ctx.free_array(dirty).unwrap();
        // lock_alloc must still hand out an acquirable lock.
        let lock = ctx.lock_alloc().unwrap();
        ctx.set_lock(&lock).unwrap();
        ctx.clear_lock(&lock).unwrap();
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}

/// The full failing scenario from the example, kept as an end-to-end
/// regression: broadcast + allreduce (dirtying scratch), then a
/// lock-protected shared log on PE 0.
#[test]
fn lock_protected_log_after_collectives() {
    let cfg = ShmemConfig::fast_sim().with_hosts(5);
    ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();
        let samples = ctx.broadcast_value(if me == 0 { 5_000u64 } else { 0 }, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(0x314159 + me as u64);
        let mut hits = 0u64;
        for _ in 0..samples {
            let (x, y): (f64, f64) = (rng.random(), rng.random());
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        let total = ctx.allreduce(ReduceOp::Sum, &[hits]).unwrap()[0];
        assert!(total > 0);

        let lock = ctx.lock_alloc().unwrap();
        let cursor = ctx.calloc_array::<u64>(1).unwrap();
        let log = ctx.calloc_array::<u64>(2 * n).unwrap();
        ctx.set_lock(&lock).unwrap();
        let slot = ctx.get::<u64>(&cursor, 0, 0).unwrap();
        assert!(slot < n as u64, "PE {me}: cursor must be a valid slot, got {slot}");
        ctx.put_slice(&log, 2 * slot as usize, &[me as u64, hits], 0).unwrap();
        ctx.quiet().expect("quiet");
        ctx.put(&cursor, 0, slot + 1, 0).unwrap();
        ctx.quiet().expect("quiet");
        ctx.clear_lock(&lock).unwrap();

        if me == 0 {
            ctx.wait_until(&cursor, 0, CmpOp::Eq, n as u64).unwrap();
            let entries = ctx.read_local_slice::<u64>(&log, 0, 2 * n).unwrap();
            let logged: u64 = entries.chunks(2).map(|e| e[1]).sum();
            assert_eq!(logged, total, "every PE's entry logged exactly once");
        }
        ctx.barrier_all().unwrap();
    })
    .unwrap();
}
