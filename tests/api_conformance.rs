//! Table I conformance: every essential OpenSHMEM routine the paper lists
//! exists and behaves, plus the §II-B "essential features" (one-sided
//! semantics, atomics, broadcast, reductions, distributed locking,
//! synchronization primitives).

use shmem_ntb::shmem::{CmpOp, ReduceOp, ShmemConfig, ShmemWorld};

fn cfg() -> ShmemConfig {
    ShmemConfig::fast_sim().with_hosts(3)
}

/// Table I rows, exercised one by one inside a single world.
#[test]
fn table_one_api_surface() {
    // shmem_init() / shmem_finalize(): ShmemWorld::run performs the NTB
    // setup before the closure and the teardown after it.
    let outcomes = ShmemWorld::run(cfg(), |ctx| {
        // my_pe(): "an integer identification of the PE".
        let me = ctx.my_pe();
        assert!(me < 3);

        // num_pes(): "number of PEs executing the OpenSHMEM application".
        assert_eq!(ctx.num_pes(), 3);

        // shmem_malloc(size): "allocate symmetric data object with
        // corresponding size".
        let sym = ctx.malloc_array::<i64>(16).expect("shmem_malloc");
        assert_eq!(sym.count(), 16);

        // shmem_type_put(dest, src, len, pe): "copy from source address
        // of my_pe to symmetric data objects of specified pe".
        let right = (me + 1) % 3;
        let src: Vec<i64> = (0..16).map(|i| (me as i64) * 1000 + i).collect();
        ctx.put_slice(&sym, 0, &src, right).expect("shmem_put");

        // shmem_barrier_all(): "synchronization for all PEs to reach the
        // same barrier".
        ctx.barrier_all().expect("shmem_barrier_all");

        // shmem_type_get(dest, src, len, pe): "copy from symmetric data
        // objects of specified pe to destination address of my_pe".
        let left = (me + 2) % 3;
        let fetched = ctx.get_slice::<i64>(&sym, 0, 16, left).expect("shmem_get");
        // The left neighbour's memory holds what *its* left neighbour
        // (me-2 = right, on a 3-ring) put there.
        let expected_writer = (left + 2) % 3;
        assert_eq!(fetched[0], (expected_writer as i64) * 1000);

        ctx.barrier_all().expect("closing barrier");
        // shmem_free half of the pair (release symmetric data objects).
        ctx.free_array(sym).expect("shmem_free");
        true
    })
    .expect("world");
    assert_eq!(outcomes, vec![true; 3]);
}

/// §II-B: "it should support remote atomic memory operations, broadcasts,
/// barrier operations, reductions, distributed locking and
/// synchronization primitives."
#[test]
fn essential_features_of_section_2b() {
    ShmemWorld::run(cfg(), |ctx| {
        let me = ctx.my_pe();

        // Remote atomics.
        let counter = ctx.calloc_array::<i64>(1).expect("calloc");
        let old = ctx.atomic_fetch_add(&counter, 0, 1i64, 0).expect("fadd");
        assert!((0..3).contains(&old));
        ctx.barrier_all().unwrap();
        if me == 0 {
            assert_eq!(ctx.read_local::<i64>(&counter, 0).unwrap(), 3);
        }

        // Broadcast.
        let v = ctx.broadcast_value(if me == 1 { 777u32 } else { 0 }, 1).expect("broadcast");
        assert_eq!(v, 777);

        // Reduction.
        let sums = ctx.allreduce(ReduceOp::Sum, &[me as u64 + 1]).expect("reduce");
        assert_eq!(sums[0], 6);

        // Distributed locking.
        let lock = ctx.lock_alloc().expect("lock alloc");
        ctx.set_lock(&lock).expect("set_lock");
        ctx.clear_lock(&lock).expect("clear_lock");

        // Point-to-point synchronization.
        let flag = ctx.calloc_array::<u64>(1).expect("flag");
        if me == 0 {
            for pe in 1..3 {
                ctx.put(&flag, 0, 9u64, pe).unwrap();
            }
            ctx.quiet().expect("quiet");
        } else {
            let got = ctx.wait_until(&flag, 0, CmpOp::Eq, 9u64).expect("wait_until");
            assert_eq!(got, 9);
        }
        ctx.barrier_all().unwrap();
    })
    .expect("world");
}

/// One-sided semantics: put is locally blocking (source buffer reusable on
/// return) and needs no action from the target PE's application thread.
#[test]
fn one_sided_local_blocking_semantics() {
    ShmemWorld::run(cfg(), |ctx| {
        let sym = ctx.calloc_array::<u64>(4).expect("alloc");
        if ctx.my_pe() == 0 {
            let mut buf = vec![1u64, 2, 3, 4];
            ctx.put_slice(&sym, 0, &buf, 1).unwrap();
            // Locally blocking: the buffer is ours again; scribbling on
            // it must not affect the data in flight.
            buf.fill(99);
            ctx.quiet().expect("quiet");
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            // PE 1 never executed any receive code, yet the data is in
            // its symmetric memory.
            assert_eq!(ctx.read_local_slice::<u64>(&sym, 0, 4).unwrap(), vec![1, 2, 3, 4]);
        }
        ctx.barrier_all().unwrap();
    })
    .expect("world");
}

/// `shmem_ptr`-style locality: symmetric objects have identical offsets
/// on every PE (the paper's Fig. 3 invariant).
#[test]
fn symmetric_address_invariant() {
    let offsets = ShmemWorld::run(cfg(), |ctx| {
        let a = ctx.malloc(40).unwrap();
        let b = ctx.malloc(4096).unwrap();
        ctx.free(a).unwrap();
        let c = ctx.malloc(24).unwrap(); // reuses a's hole identically
        (b.offset(), c.offset())
    })
    .unwrap();
    assert!(offsets.windows(2).all(|w| w[0] == w[1]), "{offsets:?}");
}

// ---------------------------------------------------------------------
// Strided transfers and collectives across ring sizes
// ---------------------------------------------------------------------

/// Ring sizes the conformance sweep runs at: the smallest ring, the
/// paper's 3-node testbed, and an odd ring with multi-hop routes.
const RING_SIZES: [usize; 3] = [2, 3, 5];

fn ring_cfg(n: usize) -> ShmemConfig {
    ShmemConfig::fast_sim().with_hosts(n)
}

/// `shmem_iput`/`shmem_iget`: strided transfers land on the expected
/// elements at every ring size, including a self-targeted transfer and
/// the zero-element degenerate call.
#[test]
fn strided_iput_iget_across_ring_sizes() {
    for n in RING_SIZES {
        ShmemWorld::run(ring_cfg(n), |ctx| {
            let me = ctx.my_pe();
            let sym = ctx.calloc_array::<u32>(128).expect("alloc");
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;

            // Contiguous source, stride-3 destination on the right
            // neighbour: element k lands at index 5 + 3k.
            let src: Vec<u32> = (0..16).map(|k| (me * 100 + k) as u32).collect();
            ctx.iput(&sym, 5, 3, &src, 1, 16, right).expect("iput");
            ctx.quiet().expect("quiet");
            ctx.barrier_all().expect("barrier");

            // Read the strided elements back from our own copy — both a
            // self-target iget and the check of the left neighbour's put.
            let mine = ctx.iget(&sym, 5, 3, 16, me).expect("self iget");
            let want: Vec<u32> = (0..16).map(|k| (left * 100 + k) as u32).collect();
            assert_eq!(mine, want, "ring {n}: left neighbour's strided put");

            // Strided source: every second element of `src`, fetched
            // remotely from the right neighbour's strided region.
            let sparse = ctx.iget(&sym, 5, 6, 8, right).expect("remote strided iget");
            let expect: Vec<u32> = (0..8).map(|k| (me * 100 + 2 * k) as u32).collect();
            assert_eq!(sparse, expect, "ring {n}: stride-6 reads every second element");

            // Self-target iput with distinct source and target strides.
            let local: Vec<u32> = (0..10).map(|k| 9000 + k).collect();
            ctx.iput(&sym, 80, 2, &local, 1, 10, me).expect("self iput");
            assert_eq!(
                ctx.iget(&sym, 80, 2, 10, me).expect("verify self iput"),
                local,
                "ring {n}: self-targeted strided round-trip"
            );

            // Zero-length calls are no-ops, never errors.
            ctx.iput(&sym, 0, 1, &[] as &[u32], 1, 0, right).expect("zero-length iput");
            assert_eq!(
                ctx.iget::<u32>(&sym, 0, 1, 0, right).expect("zero-length iget"),
                Vec::<u32>::new(),
                "ring {n}: zero-length iget returns empty"
            );

            ctx.barrier_all().expect("exit barrier");
            ctx.free_array(sym).expect("free");
        })
        .unwrap_or_else(|e| panic!("ring {n}: {e}"));
    }
}

/// Broadcast (every root), fcollect, variable-length collect (with
/// zero-length contributions) and all four reductions, at every ring
/// size.
#[test]
fn collectives_across_ring_sizes() {
    for n in RING_SIZES {
        ShmemWorld::run(ring_cfg(n), |ctx| {
            let me = ctx.my_pe();

            // broadcast_value from every root: everyone ends up with the
            // root's contribution, not their own.
            for root in 0..n {
                let v = ctx.broadcast_value((me * 10 + root) as u64, root).expect("broadcast");
                assert_eq!(v, (root * 10 + root) as u64, "ring {n}: broadcast from root {root}");
            }

            // Zero-length broadcast: a degenerate but legal collective.
            let sym = ctx.calloc_array::<u64>(8).expect("alloc");
            ctx.broadcast(&sym, 0, 0, 0).expect("zero-length broadcast");

            // fcollect: fixed two-element contribution per PE, in PE order.
            let dest = ctx.calloc_array::<u64>(2 * n).expect("alloc");
            ctx.fcollect(&dest, &[me as u64, (me + 100) as u64]).expect("fcollect");
            let all = ctx.read_local_slice::<u64>(&dest, 0, 2 * n).expect("read");
            for pe in 0..n {
                assert_eq!(all[2 * pe], pe as u64, "ring {n}: fcollect slot {pe}");
                assert_eq!(all[2 * pe + 1], (pe + 100) as u64, "ring {n}: fcollect slot {pe}");
            }

            // collect: variable-length contributions, including empty
            // ones (PEs divisible by 3 contribute nothing).
            let cdest = ctx.calloc_array::<u32>(4 * n).expect("alloc");
            let mine: Vec<u32> = (0..me % 3).map(|k| (me * 1000 + k) as u32).collect();
            let total = ctx.collect(&cdest, &mine).expect("collect");
            let want_total: usize = (0..n).map(|pe| pe % 3).sum();
            assert_eq!(total, want_total, "ring {n}: collect total");
            let gathered = ctx.read_local_slice::<u32>(&cdest, 0, total).expect("read");
            let mut expect = Vec::new();
            for pe in 0..n {
                expect.extend((0..pe % 3).map(|k| (pe * 1000 + k) as u32));
            }
            assert_eq!(gathered, expect, "ring {n}: collect concatenates in PE order");

            // Reductions: all four ops over a two-element vector.
            let src = [(me + 1) as u64, (2 * me) as u64];
            let sum = ctx.allreduce(ReduceOp::Sum, &src).expect("sum");
            assert_eq!(sum[0], (1..=n as u64).sum::<u64>(), "ring {n}: sum of 1..=n");
            assert_eq!(sum[1], (0..n as u64).map(|p| 2 * p).sum::<u64>(), "ring {n}");
            let max = ctx.allreduce(ReduceOp::Max, &src).expect("max");
            assert_eq!(max, vec![n as u64, 2 * (n as u64 - 1)], "ring {n}: max");
            let min = ctx.allreduce(ReduceOp::Min, &src).expect("min");
            assert_eq!(min, vec![1, 0], "ring {n}: min");
            let prod = ctx.allreduce(ReduceOp::Prod, &[(me + 1) as u64]).expect("prod");
            assert_eq!(prod, vec![(1..=n as u64).product::<u64>()], "ring {n}: n! product");

            // reduce_to_root: only the root sees the result.
            let at_root = ctx.reduce_to_root(ReduceOp::Sum, &[1u64], n - 1).expect("reduce");
            if me == n - 1 {
                assert_eq!(at_root, Some(vec![n as u64]), "ring {n}: root holds the sum");
            } else {
                assert_eq!(at_root, None, "ring {n}: non-roots get None");
            }

            ctx.free_array(cdest).expect("free");
            ctx.free_array(dest).expect("free");
            ctx.free_array(sym).expect("free");
        })
        .unwrap_or_else(|e| panic!("ring {n}: {e}"));
    }
}
