//! Table I conformance: every essential OpenSHMEM routine the paper lists
//! exists and behaves, plus the §II-B "essential features" (one-sided
//! semantics, atomics, broadcast, reductions, distributed locking,
//! synchronization primitives).

use shmem_ntb::shmem::{CmpOp, ReduceOp, ShmemConfig, ShmemWorld};

fn cfg() -> ShmemConfig {
    ShmemConfig::fast_sim().with_hosts(3)
}

/// Table I rows, exercised one by one inside a single world.
#[test]
fn table_one_api_surface() {
    // shmem_init() / shmem_finalize(): ShmemWorld::run performs the NTB
    // setup before the closure and the teardown after it.
    let outcomes = ShmemWorld::run(cfg(), |ctx| {
        // my_pe(): "an integer identification of the PE".
        let me = ctx.my_pe();
        assert!(me < 3);

        // num_pes(): "number of PEs executing the OpenSHMEM application".
        assert_eq!(ctx.num_pes(), 3);

        // shmem_malloc(size): "allocate symmetric data object with
        // corresponding size".
        let sym = ctx.malloc_array::<i64>(16).expect("shmem_malloc");
        assert_eq!(sym.count(), 16);

        // shmem_type_put(dest, src, len, pe): "copy from source address
        // of my_pe to symmetric data objects of specified pe".
        let right = (me + 1) % 3;
        let src: Vec<i64> = (0..16).map(|i| (me as i64) * 1000 + i).collect();
        ctx.put_slice(&sym, 0, &src, right).expect("shmem_put");

        // shmem_barrier_all(): "synchronization for all PEs to reach the
        // same barrier".
        ctx.barrier_all().expect("shmem_barrier_all");

        // shmem_type_get(dest, src, len, pe): "copy from symmetric data
        // objects of specified pe to destination address of my_pe".
        let left = (me + 2) % 3;
        let fetched = ctx.get_slice::<i64>(&sym, 0, 16, left).expect("shmem_get");
        // The left neighbour's memory holds what *its* left neighbour
        // (me-2 = right, on a 3-ring) put there.
        let expected_writer = (left + 2) % 3;
        assert_eq!(fetched[0], (expected_writer as i64) * 1000);

        ctx.barrier_all().expect("closing barrier");
        // shmem_free half of the pair (release symmetric data objects).
        ctx.free_array(sym).expect("shmem_free");
        true
    })
    .expect("world");
    assert_eq!(outcomes, vec![true; 3]);
}

/// §II-B: "it should support remote atomic memory operations, broadcasts,
/// barrier operations, reductions, distributed locking and
/// synchronization primitives."
#[test]
fn essential_features_of_section_2b() {
    ShmemWorld::run(cfg(), |ctx| {
        let me = ctx.my_pe();

        // Remote atomics.
        let counter = ctx.calloc_array::<i64>(1).expect("calloc");
        let old = ctx.atomic_fetch_add(&counter, 0, 1i64, 0).expect("fadd");
        assert!((0..3).contains(&old));
        ctx.barrier_all().unwrap();
        if me == 0 {
            assert_eq!(ctx.read_local::<i64>(&counter, 0).unwrap(), 3);
        }

        // Broadcast.
        let v = ctx.broadcast_value(if me == 1 { 777u32 } else { 0 }, 1).expect("broadcast");
        assert_eq!(v, 777);

        // Reduction.
        let sums = ctx.allreduce(ReduceOp::Sum, &[me as u64 + 1]).expect("reduce");
        assert_eq!(sums[0], 6);

        // Distributed locking.
        let lock = ctx.lock_alloc().expect("lock alloc");
        ctx.set_lock(&lock).expect("set_lock");
        ctx.clear_lock(&lock).expect("clear_lock");

        // Point-to-point synchronization.
        let flag = ctx.calloc_array::<u64>(1).expect("flag");
        if me == 0 {
            for pe in 1..3 {
                ctx.put(&flag, 0, 9u64, pe).unwrap();
            }
            ctx.quiet().expect("quiet");
        } else {
            let got = ctx.wait_until(&flag, 0, CmpOp::Eq, 9u64).expect("wait_until");
            assert_eq!(got, 9);
        }
        ctx.barrier_all().unwrap();
    })
    .expect("world");
}

/// One-sided semantics: put is locally blocking (source buffer reusable on
/// return) and needs no action from the target PE's application thread.
#[test]
fn one_sided_local_blocking_semantics() {
    ShmemWorld::run(cfg(), |ctx| {
        let sym = ctx.calloc_array::<u64>(4).expect("alloc");
        if ctx.my_pe() == 0 {
            let mut buf = vec![1u64, 2, 3, 4];
            ctx.put_slice(&sym, 0, &buf, 1).unwrap();
            // Locally blocking: the buffer is ours again; scribbling on
            // it must not affect the data in flight.
            buf.fill(99);
            ctx.quiet().expect("quiet");
        }
        ctx.barrier_all().unwrap();
        if ctx.my_pe() == 1 {
            // PE 1 never executed any receive code, yet the data is in
            // its symmetric memory.
            assert_eq!(ctx.read_local_slice::<u64>(&sym, 0, 4).unwrap(), vec![1, 2, 3, 4]);
        }
        ctx.barrier_all().unwrap();
    })
    .expect("world");
}

/// `shmem_ptr`-style locality: symmetric objects have identical offsets
/// on every PE (the paper's Fig. 3 invariant).
#[test]
fn symmetric_address_invariant() {
    let offsets = ShmemWorld::run(cfg(), |ctx| {
        let a = ctx.malloc(40).unwrap();
        let b = ctx.malloc(4096).unwrap();
        ctx.free(a).unwrap();
        let c = ctx.malloc(24).unwrap(); // reuses a's hole identically
        (b.offset(), c.offset())
    })
    .unwrap();
    assert!(offsets.windows(2).all(|w| w[0] == w[1]), "{offsets:?}");
}
