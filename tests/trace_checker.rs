//! The protocol-invariant checker as a test harness: clean workloads
//! must certify clean, recovery under injected faults must certify
//! clean, and a *deliberately broken* protocol — acknowledgements
//! suppressed by the fault plan — must be caught, with the offending
//! trace window dumped to `target/trace-dumps/` exactly as a real
//! violation would be.
//!
//! This is the negative control for the chaos matrix in `chaos.rs`: a
//! checker that cannot flag a protocol with its acks cut off would
//! certify anything.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use shmem_ntb::net::{
    check, AmoOp, DeliveryTarget, HeartbeatConfig, NetConfig, RetryPolicy, RingNetwork, Violation,
};
use shmem_ntb::shmem::{ReduceOp, ShmemConfig, ShmemWorld};
use shmem_ntb::sim::{
    render_events, EventKind, FaultAction, FaultPlan, Region, TraceEvent, TransferMode,
};

struct TraceHeap {
    region: Region,
    amo_lock: std::sync::Mutex<()>,
}

impl TraceHeap {
    fn new() -> Arc<Self> {
        Arc::new(TraceHeap {
            region: Region::anonymous(1 << 20),
            amo_lock: std::sync::Mutex::new(()),
        })
    }
}

impl DeliveryTarget for TraceHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> shmem_ntb::sim::Result<()> {
        self.region.write(offset, data)
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> shmem_ntb::sim::Result<()> {
        self.region.read(offset, out)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> shmem_ntb::sim::Result<u64> {
        let _guard = self.amo_lock.lock().unwrap();
        let mut buf = [0u8; 8];
        self.region.read(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        let new = op.apply(old, operand, compare);
        self.region.write(offset, &new.to_le_bytes()[..width])?;
        Ok(old)
    }
}

fn attach_heaps(net: &RingNetwork, hosts: usize) -> Vec<Arc<TraceHeap>> {
    let heaps: Vec<Arc<TraceHeap>> = (0..hosts).map(|_| TraceHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }
    heaps
}

fn lossy_retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(40),
        max_retries: 4,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 2,
    }
}

fn dump_violations(label: &str, violations: &[Violation], events: &[TraceEvent]) -> PathBuf {
    let dir = PathBuf::from("target/trace-dumps");
    std::fs::create_dir_all(&dir).expect("create target/trace-dumps");
    let path = dir.join(format!("{label}.txt"));
    let rendered: String = violations.iter().map(|v| v.render()).collect();
    let body = format!(
        "{} violation(s) in {} events\n\n{}\nfull trace:\n{}",
        violations.len(),
        events.len(),
        rendered,
        render_events(events),
    );
    std::fs::write(&path, body).expect("write trace dump");
    path
}

/// A full SHMEM workload — puts, strided puts/gets, atomics, barriers,
/// broadcast and a reduction — certifies clean, and the trace contains
/// every layer's events (API issue/complete, chunk transport, AMO
/// application, barrier rounds).
#[test]
fn shmem_workload_trace_is_certified_clean() {
    const PES: usize = 3;
    let results = ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(PES), |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let sym = ctx.calloc_array::<u64>(256).expect("alloc");
        let right = (ctx.my_pe() + 1) % ctx.num_pes();
        let data: Vec<u64> = (0..64).map(|i| (ctx.my_pe() * 1000 + i) as u64).collect();
        ctx.put_slice(&sym, 0, &data, right).expect("put");
        ctx.iput(&sym, 64, 2, &data, 1, 32, right).expect("iput");
        ctx.quiet().expect("quiet");
        ctx.barrier_all().expect("barrier");
        let back = ctx.get_slice::<u64>(&sym, 0, 64, right).expect("get");
        assert_eq!(back.len(), 64);
        ctx.iget(&sym, 64, 2, 32, right).expect("iget");
        ctx.atomic_fetch_add(&sym, 255, 1u64, 0).expect("amo");
        ctx.barrier_all().expect("barrier");
        let sum = ctx.allreduce(ReduceOp::Sum, &[ctx.my_pe() as u64]).expect("allreduce");
        assert_eq!(sum, vec![(0..PES as u64).sum::<u64>()]);
        ctx.free_array(sym).expect("free");
        std::sync::Arc::clone(log)
    })
    .expect("world");
    let log = &results[0];
    let events = log.take();
    assert_eq!(log.dropped(), 0, "trace must be complete");
    let report = check(&events, PES);
    if !report.is_clean() {
        let path = dump_violations("shmem-workload", &report.violations, &events);
        panic!("clean workload flagged; dump at {}", path.display());
    }
    assert!(report.puts_checked > 0, "puts traced");
    assert!(report.gets_checked > 0, "gets traced");
    assert!(report.amos_checked > 0, "AMOs traced");
    assert!(report.barriers_checked > 0, "barriers traced");
    for kind in [
        EventKind::ApiPutIssue,
        EventKind::ApiGetComplete,
        EventKind::BarrierStart,
        EventKind::BarrierEnd,
        EventKind::QuietStart,
        EventKind::PutDeliver,
    ] {
        assert!(events.iter().any(|e| e.kind == kind), "trace must contain {}", kind.name());
    }
}

/// One scripted dropped ack forces an end-to-end retransmission; the
/// recovery leaves a clean trace — the retransmit is visible, the put
/// still resolves exactly once (the duplicate ack path must not
/// double-resolve it).
#[test]
fn recovered_ack_drop_certifies_clean() {
    const HOSTS: usize = 2;
    let plan = FaultPlan::none().with_seed(11).with_scripted(0, FaultAction::DropAck, 1);
    let cfg = NetConfig::fast(HOSTS).with_retry(lossy_retry()).with_faults(plan);
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps = attach_heaps(&net, HOSTS);

    let payload = vec![0xA5u8; 4096];
    net.node(0).put_bytes(1, 512, &payload, TransferMode::Memcpy).unwrap();
    net.node(0).quiet().expect("retransmission recovers the dropped ack");
    assert_eq!(net.node(0).outstanding_puts(), 0);
    assert_eq!(heaps[1].region.read_vec(512, 4096).unwrap(), payload);
    assert_eq!(net.fault_stats_total().acks_suppressed, 1, "the scripted drop fired");

    let events = net.take_events();
    let report = check(&events, HOSTS);
    if !report.is_clean() {
        let path = dump_violations("recovered-ack-drop", &report.violations, &events);
        panic!("recovered run flagged; dump at {}", path.display());
    }
    assert!(
        events.iter().any(|e| e.kind == EventKind::Retransmit),
        "the dropped ack must force a visible retransmission"
    );
    for node in net.nodes() {
        assert!(node.take_errors().is_empty());
    }
}

/// Negative control: with *every* ack suppressed and a retry policy too
/// patient to abandon within the observation window, the trace shows a
/// put that never resolves — the checker must flag it and the harness
/// must produce a readable trace-window artifact.
#[test]
fn suppressed_acks_are_caught_by_the_checker() {
    const HOSTS: usize = 2;
    let plan = FaultPlan::none().with_seed(13).with_ack_drop(1.0);
    let patient = RetryPolicy {
        ack_timeout: Duration::from_secs(30),
        max_retries: 1,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 1000,
    };
    let cfg = NetConfig::fast(HOSTS).with_retry(patient).with_faults(plan);
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps = attach_heaps(&net, HOSTS);

    let payload = vec![0x5Au8; 2048];
    net.node(0).put_bytes(1, 256, &payload, TransferMode::Memcpy).unwrap();
    // The put is delivered (data plane works) but its ack never returns.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while heaps[1].region.read_vec(256, 2048).unwrap() != payload {
        assert!(std::time::Instant::now() < deadline, "put must still be delivered");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(net.node(0).outstanding_puts(), 1, "the put can never be acknowledged");
    assert!(net.fault_stats_total().acks_suppressed >= 1);

    let events = net.take_events();
    let report = check(&events, HOSTS);
    assert!(!report.is_clean(), "an unresolvable put must not certify");
    let broken: Vec<&Violation> =
        report.violations.iter().filter(|v| v.invariant == "put-resolution").collect();
    assert!(
        !broken.is_empty(),
        "expected a put-resolution violation, got: {}",
        report.render_violations()
    );
    assert!(
        broken[0].message.contains("never acked nor abandoned"),
        "violation names the unresolved put: {}",
        broken[0].message
    );
    assert!(!broken[0].window.is_empty(), "violation carries its trace window");

    // The artifact a CI failure would upload: render it and check it is
    // a readable account of the failure.
    let path = dump_violations("negative-ack-suppressed", &report.violations, &events);
    let dump = std::fs::read_to_string(&path).unwrap();
    assert!(dump.contains("put-resolution"), "dump names the invariant");
    assert!(dump.contains("put_issue"), "dump shows the unresolved put's issue event");
}

/// Tampering control: start from a certified-clean trace and erase the
/// target-side AMO applications — the checker must notice that the AMO
/// completions have no matching application.
#[test]
fn tampered_trace_fails_amo_invariant() {
    const HOSTS: usize = 2;
    let cfg = NetConfig::fast(HOSTS).with_retry(lossy_retry());
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let _heaps = attach_heaps(&net, HOSTS);
    net.node(0).amo(1, AmoOp::FetchAdd, 64, 8, 3, 0).unwrap();

    let events = net.take_events();
    assert!(check(&events, HOSTS).is_clean(), "baseline trace must certify");
    let tampered: Vec<TraceEvent> =
        events.into_iter().filter(|e| e.kind != EventKind::AmoApply).collect();
    let report = check(&tampered, HOSTS);
    assert!(
        report.violations.iter().any(|v| v.invariant == "amo-exactly-once"),
        "erased AMO application must be flagged, got: {}",
        report.render_violations()
    );
}

/// Get-pipeline tampering controls: a windowed multi-sub-request get
/// certifies clean; duplicating one received fill (a double-filled
/// chunk) or erasing one (a dropped fill on a completed sub-request)
/// must both fail the get-resolution invariant — a checker that cannot
/// see either would certify a corrupted reassembly.
#[test]
fn tampered_get_pipeline_traces_fail_get_resolution() {
    const HOSTS: usize = 2;
    const LEN: usize = 16 << 10;
    let cfg = NetConfig::fast(HOSTS).with_retry(lossy_retry()).with_get_pipeline(1 << 10, 4);
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps = attach_heaps(&net, HOSTS);
    let pattern: Vec<u8> = (0..LEN).map(|i| (i as u8).wrapping_mul(13)).collect();
    heaps[1].region.write(512, &pattern).unwrap();
    let got = net.node(0).get_bytes(1, 512, LEN as u64, TransferMode::Dma).unwrap();
    assert_eq!(got, pattern, "windowed get must be byte-exact");

    let events = net.take_events();
    let report = check(&events, HOSTS);
    assert!(
        report.is_clean(),
        "baseline windowed get must certify, got: {}",
        report.render_violations()
    );
    assert!(
        report.get_reqs_checked >= LEN / (1 << 10),
        "the pipeline must have split the get into sub-requests, saw {}",
        report.get_reqs_checked
    );

    let fill = *events
        .iter()
        .find(|e| e.kind == EventKind::GetChunkRx)
        .expect("a received fill must be traced");
    let last = *events.last().unwrap();

    // Tamper 1: the same fill recorded twice — a double-filled chunk.
    let mut tampered = events.clone();
    tampered.push(TraceEvent { seq: last.seq + 1, t_us: last.t_us + 1, ..fill });
    let report = check(&tampered, HOSTS);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "get-resolution" && v.message.contains("overlaps")),
        "double fill must be flagged as overlapping coverage, got: {}",
        report.render_violations()
    );

    // Tamper 2: the fill erased — the sub-request completes with a gap.
    let tampered: Vec<TraceEvent> = events.iter().copied().filter(|e| e.seq != fill.seq).collect();
    let report = check(&tampered, HOSTS);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "get-resolution" && v.message.contains("dropped fill")),
        "dropped fill on a completed sub-request must be flagged, got: {}",
        report.render_violations()
    );
}

/// Failure-model controls: a real crash-eviction lifecycle certifies
/// clean, and tampering with the same trace — a put chunk transmitted
/// at a PE its sender already declared dead, or a membership view
/// republished at a stale epoch — is caught by the failure invariants
/// (dead-PE transmit discipline, membership-epoch monotonicity).
#[test]
fn crash_lifecycle_certifies_and_failure_tampering_is_caught() {
    const HOSTS: usize = 3;
    let cfg =
        NetConfig::fast(HOSTS).with_retry(lossy_retry()).with_heartbeat(HeartbeatConfig::fast());
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    let heaps = attach_heaps(&net, HOSTS);

    // Pre-crash traffic among the survivors, and beat warm-up: the
    // detector deliberately ignores boot-time silence, so the crash must
    // land after the victim's first beats.
    let payload = vec![0xC7u8; 1024];
    net.node(0).put_bytes(1, 128, &payload, TransferMode::Memcpy).unwrap();
    net.node(0).quiet().unwrap();
    assert_eq!(heaps[1].region.read_vec(128, 1024).unwrap(), payload);
    std::thread::sleep(Duration::from_millis(100));

    net.node(2).crash();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while net.node(0).membership().view().is_live(2) || net.node(1).membership().view().is_live(2) {
        assert!(std::time::Instant::now() < deadline, "eviction must reach every survivor");
        std::thread::sleep(Duration::from_millis(5));
    }

    let events = net.take_events();
    assert!(events.iter().any(|e| e.kind == EventKind::NodeCrash), "crash must be traced");
    let death = events
        .iter()
        .find(|e| e.kind == EventKind::PeDead && e.payload[0] == 2)
        .expect("an eviction record must be traced");
    let report = check(&events, HOSTS);
    assert!(
        report.is_clean(),
        "crash-eviction lifecycle must certify clean, got: {}",
        report.render_violations()
    );
    assert!(report.membership_updates_checked > 0, "views must be checked");

    let last = *events.last().unwrap();

    // Tamper 1: the PE that recorded the death transmits a put chunk at
    // the dead PE afterwards.
    let mut tampered = events.clone();
    tampered.push(TraceEvent {
        seq: last.seq + 1,
        t_us: last.t_us + 1,
        pe: death.pe,
        link: 0,
        kind: EventKind::PutChunkTx,
        op_id: 999,
        payload: [2, 64],
    });
    let report = check(&tampered, HOSTS);
    assert!(
        report.violations.iter().any(|v| v.invariant == "dead-pe-discipline"),
        "post-eviction transmit must be flagged, got: {}",
        report.render_violations()
    );

    // Tamper 2: a survivor republishes a membership view at a stale
    // epoch (one it already moved past).
    let stale = events
        .iter()
        .find(|e| e.kind == EventKind::MembershipUpdate)
        .expect("a membership update must be traced");
    let mut tampered = events.clone();
    tampered.push(TraceEvent {
        seq: last.seq + 1,
        t_us: last.t_us + 1,
        pe: stale.pe,
        link: 0,
        kind: EventKind::MembershipUpdate,
        op_id: stale.op_id,
        payload: stale.payload,
    });
    let report = check(&tampered, HOSTS);
    assert!(
        report.violations.iter().any(|v| v.invariant == "membership-epoch-monotone"),
        "stale view republish must be flagged, got: {}",
        report.render_violations()
    );
}
