//! # shmem-ntb — OpenSHMEM over a switchless PCIe NTB ring (umbrella crate)
//!
//! Reproduction of *"Developing an OpenSHMEM Model over a Switchless PCIe
//! Non-Transparent Bridge Interface"* (Lim, Park, Cha — IPDPSW 2019).
//!
//! This crate re-exports the three layers of the stack so examples and
//! downstream users need a single dependency:
//!
//! * [`sim`] — the PCIe NTB hardware model (BARs, scratchpads, doorbells,
//!   DMA engine, link timing).
//! * [`net`] — the switchless ring interconnect built from NTB links
//!   (transfer-info frames, per-host service threads, bypass forwarding).
//! * [`shmem`] — the OpenSHMEM programming model (symmetric heap, put/get,
//!   barrier, collectives, atomics, locks).
//!
//! ## Quickstart
//!
//! ```
//! use shmem_ntb::prelude::*;
//!
//! let cfg = ShmemConfig::builder().hosts(3).build();
//! ShmemWorld::run(cfg, |ctx| {
//!     let sym = ctx.malloc_array::<u64>(8).unwrap();
//!     let right = (ctx.my_pe() + 1) % ctx.num_pes();
//!     let data: Vec<u64> = (0..8).map(|i| (ctx.my_pe() as u64) * 100 + i).collect();
//!     ctx.put_slice(&sym, 0, &data, right).unwrap();
//!     ctx.barrier_all().unwrap();
//!     let left = (ctx.my_pe() + ctx.num_pes() - 1) % ctx.num_pes();
//!     let got: Vec<u64> = ctx.read_local_slice(&sym, 0, 8).unwrap();
//!     assert_eq!(got[0], (left as u64) * 100);
//! })
//! .unwrap();
//! ```

pub use ntb_net as net;
pub use ntb_sim as sim;
pub use shmem_core as shmem;

/// One-line import for applications: `use shmem_ntb::prelude::*;`
/// (re-exports [`shmem_core::prelude`]).
pub mod prelude {
    pub use shmem_core::prelude::*;
}
