//! `bandwidth` — an OSU-style point-to-point micro-benchmark utility.
//!
//! Sweeps message sizes over the *calibrated* (paper-scale) timing model
//! and prints put/get latency and bandwidth between PE 0 and a chosen
//! partner, for both data paths. This is the tool you would run first on
//! a freshly cabled ring; it is also a compact interactive view of the
//! Fig. 9 physics.
//!
//! ```text
//! cargo run --release --example bandwidth -- [partner-pe] [time-scale]
//! ```

use std::time::Instant;

use shmem_ntb::prelude::*;

const PES: usize = 5;
const REPS: usize = 4;

fn main() {
    let mut args = std::env::args().skip(1);
    let partner: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.0);
    assert!((1..PES).contains(&partner), "partner must be 1..{PES}");

    // The paper's testbed shape: hop counts below are ring distances.
    let mut builder = ShmemConfig::builder()
        .hosts(PES)
        .topology(Topology::ring(PES))
        .barrier_timeout(std::time::Duration::from_secs(600));
    builder = if scale == 1.0 { builder.paper_timing() } else { builder.time_scale(scale) };
    let cfg = builder.build();

    println!("point-to-point PE0 <-> PE{partner} (time scale {scale})");
    println!(
        "{:>8} {:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "size", "mode", "put lat(us)", "put MB/s", "get lat(us)", "get MB/s"
    );

    ShmemWorld::run(cfg, |ctx| {
        let max = 512 << 10;
        let sym = ctx.malloc_array::<u8>(max).expect("buffer");
        if ctx.my_pe() != 0 {
            ctx.barrier_all().expect("spectator barrier");
            return;
        }
        for size in (0..10).map(|i| 1024usize << i) {
            for mode in [TransferMode::Dma, TransferMode::Memcpy] {
                let data = vec![0xBEu8; size];
                // Warm-up, then a timed pipelined burst.
                let opts = OpOptions::new().mode(mode);
                ctx.put_slice_opts(&sym, 0, &data, partner, opts).expect("warm-up");
                let t0 = Instant::now();
                for _ in 0..REPS {
                    ctx.put_slice_opts(&sym, 0, &data, partner, opts).expect("put");
                }
                let put = t0.elapsed() / REPS as u32;
                ctx.quiet().expect("quiet");

                let t0 = Instant::now();
                for _ in 0..REPS {
                    let v = ctx.get_slice_opts::<u8>(&sym, 0, size, partner, opts).expect("get");
                    assert_eq!(v.len(), size);
                }
                let get = t0.elapsed() / REPS as u32;

                println!(
                    "{:>8} {:>6} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1}",
                    shmem_bench_label(size),
                    mode.label(),
                    put.as_secs_f64() * 1e6,
                    size as f64 / put.as_secs_f64() / 1e6,
                    get.as_secs_f64() * 1e6,
                    size as f64 / get.as_secs_f64() / 1e6,
                );
            }
        }
        ctx.barrier_all().expect("final barrier");
    })
    .expect("world run");
}

fn shmem_bench_label(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}
