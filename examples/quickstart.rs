//! Quickstart: the OpenSHMEM "hello world" on the switchless NTB ring.
//!
//! Three PEs each allocate the same symmetric array, put a greeting into
//! their right neighbour's memory, synchronize with the ring barrier, and
//! read what their left neighbour deposited.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shmem_ntb::prelude::*;

fn main() {
    // Fast functional simulation: no modelled PCIe latencies. Swap in
    // `ShmemConfig::paper()` to feel the calibrated testbed timing, or
    // `Topology::torus(r, c)` / `Topology::clique(n)` to re-cable the
    // fabric — the SHMEM API is identical on every shape.
    let cfg = ShmemConfig::builder().hosts(3).topology(Topology::ring(3)).build();

    let reports = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();

        // Symmetric allocation: same offset on every PE (collective).
        let slots = ctx.malloc_array::<u64>(n).expect("symmetric alloc");

        // One-sided put into the right neighbour's symmetric memory.
        let right = (me + 1) % n;
        ctx.put(&slots, me, (me as u64 + 1) * 111, right).expect("put");

        // The ring barrier (two doorbell sweeps) completes all puts.
        ctx.barrier_all().expect("barrier");

        // What did the left neighbour leave in *our* memory?
        let left = (me + n - 1) % n;
        let gift = ctx.read_local::<u64>(&slots, left).expect("read");
        format!("PE {me}: received {gift} from PE {left}")
    })
    .expect("world run");

    for line in reports {
        println!("{line}");
    }
}
