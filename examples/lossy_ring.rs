//! `lossy_ring` — a 1-D stencil halo exchange over a deliberately lossy
//! ring: 1% of data doorbells are dropped and every link flaps dark for
//! a spell mid-run. The exchange must still converge to the exact same
//! answer a clean ring produces, with the recovery machinery (ack
//! timeouts, retransmission, CRC rejects, rerouting, probes) absorbing
//! every injected fault. The per-PE recovery counters are printed at
//! the end — on a clean run they are all zero.
//!
//! ```text
//! cargo run --release --example lossy_ring -- [seed]
//! ```

use std::time::Duration;

use shmem_ntb::net::RetryPolicy;
use shmem_ntb::prelude::*;

const PES: usize = 3;
const CELLS: usize = 64;
const ITERS: usize = 20;

fn lossy_plan(seed: u64) -> FaultPlan {
    // 1% of data doorbells vanish; each of the three ring links goes
    // dark once, 150 ms at a time, staggered through the run — long
    // enough that the health tracker marks the endpoint Down, reroutes
    // and probes it back.
    FaultPlan::none()
        .with_seed(seed)
        .with_doorbell_drop(0.01)
        .with_link_down(0, 25, Duration::from_millis(150))
        .with_link_down(1, 60, Duration::from_millis(150))
        .with_link_down(2, 100, Duration::from_millis(150))
}

fn snappy_retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: Duration::from_millis(50),
        max_retries: 8,
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(80),
        probe_interval: Duration::from_millis(25),
        mailbox_timeout: Duration::from_millis(25),
        failure_threshold: 2,
    }
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0xBAD11);

    let cfg = ShmemConfig::builder()
        .hosts(PES)
        .topology(Topology::ring(PES))
        .retry(snappy_retry())
        .faults(lossy_plan(seed))
        .build();

    println!("lossy ring: {PES} PEs, {CELLS} cells/PE, {ITERS} iterations, seed {seed:#x}");

    let reports = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;

        // Owned cells plus a ghost cell at each end.
        let field = ctx.calloc_array::<f64>(CELLS + 2).expect("field");
        let mut local = vec![0.0f64; CELLS + 2];
        // A deterministic bumpy initial condition.
        for (i, cell) in local.iter_mut().enumerate().skip(1).take(CELLS) {
            *cell = ((me * CELLS + i) % 17) as f64;
        }

        for _iter in 0..ITERS {
            // Halo exchange: my first owned cell -> left neighbour's
            // right ghost; my last owned cell -> right neighbour's left
            // ghost. Both travel the lossy ring.
            ctx.put_slice(&field, CELLS + 1, &local[1..2], left).expect("halo to left");
            ctx.put_slice(&field, 0, &local[CELLS..CELLS + 1], right).expect("halo to right");
            ctx.quiet().expect("quiet");
            ctx.barrier_all().expect("halo barrier");
            local[0] = ctx.read_local::<f64>(&field, 0).expect("left ghost");
            local[CELLS + 1] = ctx.read_local::<f64>(&field, CELLS + 1).expect("right ghost");

            // Jacobi relaxation over the owned cells.
            let prev = local.clone();
            for i in 1..=CELLS {
                local[i] = 0.25 * prev[i - 1] + 0.5 * prev[i] + 0.25 * prev[i + 1];
            }
            ctx.barrier_all().expect("step barrier");
        }

        let checksum: f64 = local[1..=CELLS].iter().sum();
        (me, checksum, ctx.stats_snapshot())
    })
    .expect("lossy world");

    let mut recovered = 0;
    println!(
        "\n{:>3} {:>14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "PE", "checksum", "rexmit", "crcrej", "reroute", "dup", "probe", "down"
    );
    for (pe, checksum, stats) in &reports {
        println!(
            "{:>3} {:>14.6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            pe,
            checksum,
            stats.retransmits,
            stats.checksum_rejects,
            stats.reroutes,
            stats.duplicates_suppressed,
            stats.probes_sent,
            stats.link_down_events
        );
        recovered += stats.recovery_total();
    }
    let total: f64 = reports.iter().map(|(_, c, _)| c).sum();
    println!("\nglobal checksum {total:.6} (conserved: sum of the initial field)");
    println!("recovery actions absorbed across the ring: {recovered}");
    if recovered == 0 {
        println!("(no faults hit the data path this run — try another seed)");
    }
}
