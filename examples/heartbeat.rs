//! Heartbeat monitoring — the classic NTB use case, on the SHMEM model.
//!
//! Before NTB became an interconnect, it connected pairs of hosts "mainly
//! to check connected host processors such as with heartbeating" (paper
//! §I). This example rebuilds that service on top of the OpenSHMEM
//! model: every PE periodically puts a monotonically increasing beat
//! counter into a symmetric status board on every other PE; each PE
//! watches the board and flags peers whose counter stalls. PE 3
//! deliberately stops beating halfway through, and everyone detects it.
//!
//! ```text
//! cargo run --release --example heartbeat
//! ```

use std::time::{Duration, Instant};

use shmem_ntb::prelude::*;

const PES: usize = 4;
const FAILING_PE: usize = 3;
const BEATS_BEFORE_FAILURE: u64 = 10;
const BEAT_PERIOD: Duration = Duration::from_millis(5);
const SUSPECT_AFTER: Duration = Duration::from_millis(40);
const RUN_FOR: Duration = Duration::from_millis(300);

fn main() {
    let cfg = ShmemConfig::builder().hosts(PES).topology(Topology::ring(PES)).build();

    let verdicts = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();
        // board[p] holds PE p's latest beat, replicated on every PE.
        let board = ctx.calloc_array::<u64>(n).expect("status board");
        ctx.barrier_all().expect("setup");

        let start = Instant::now();
        let mut my_beat = 0u64;
        let mut last_seen = vec![(0u64, Instant::now()); n];
        let mut suspected = vec![false; n];

        while start.elapsed() < RUN_FOR {
            // Beat (unless we are the scripted failure).
            let failing = me == FAILING_PE && my_beat >= BEATS_BEFORE_FAILURE;
            if !failing {
                my_beat += 1;
                for pe in 0..n {
                    if pe == me {
                        ctx.write_local(&board, me, my_beat).expect("local beat");
                    } else {
                        ctx.put(&board, me, my_beat, pe).expect("remote beat");
                    }
                }
            }

            // Watch everyone else's slot in our own board copy.
            for pe in 0..n {
                if pe == me {
                    continue;
                }
                let beat = ctx.read_local::<u64>(&board, pe).expect("read slot");
                if beat > last_seen[pe].0 {
                    last_seen[pe] = (beat, Instant::now());
                    suspected[pe] = false;
                } else if last_seen[pe].1.elapsed() > SUSPECT_AFTER && !suspected[pe] {
                    suspected[pe] = true;
                    println!(
                        "PE {me}: peer {pe} suspected dead (last beat {} at +{:?})",
                        last_seen[pe].0,
                        last_seen[pe].1.duration_since(start)
                    );
                }
            }
            std::thread::sleep(BEAT_PERIOD);
        }
        // No barrier here: the "failed" PE still participates in the final
        // one (it only stopped beating), so the world tears down cleanly.
        ctx.barrier_all().expect("teardown");
        suspected
    })
    .expect("world");

    println!("\nfinal suspicion matrix (row = observer):");
    for (observer, row) in verdicts.iter().enumerate() {
        println!("  PE {observer}: {row:?}");
        for (peer, &suspect) in row.iter().enumerate() {
            if observer == peer {
                continue;
            }
            assert_eq!(suspect, peer == FAILING_PE, "observer {observer} verdict on {peer}");
        }
    }
    println!("OK: every live PE detected exactly the failed peer (PE {FAILING_PE})");
}
