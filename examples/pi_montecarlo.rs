//! Monte-Carlo π with collectives: broadcast, local work, allreduce.
//!
//! PE 0 broadcasts the experiment parameters, every PE throws darts at
//! the unit square, and the hit counts meet in an `allreduce`. A
//! distributed lock then serializes appending per-PE summaries into a
//! shared log region on PE 0 — exercising the lock and ordered-put path.
//!
//! ```text
//! cargo run --release --example pi_montecarlo
//! ```

use rand::prelude::*;
use rand::rngs::StdRng;
use shmem_ntb::prelude::*;

const PES: usize = 5;

fn main() {
    let cfg = ShmemConfig::builder().hosts(PES).topology(Topology::ring(PES)).build();

    let estimates = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();

        // PE 0 decides the sample count; everyone learns it by broadcast.
        let samples_per_pe =
            ctx.broadcast_value(if me == 0 { 200_000u64 } else { 0 }, 0).expect("bcast");
        assert_eq!(samples_per_pe, 200_000);

        // Embarrassingly parallel dart throwing.
        let mut rng = StdRng::seed_from_u64(0x314159 + me as u64);
        let mut hits = 0u64;
        for _ in 0..samples_per_pe {
            let x: f64 = rng.random();
            let y: f64 = rng.random();
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }

        // Global reduction: everyone obtains the total hit count.
        let total_hits = ctx.allreduce(ReduceOp::Sum, &[hits]).expect("allreduce")[0];
        let total_samples = samples_per_pe * n as u64;
        let pi = 4.0 * total_hits as f64 / total_samples as f64;

        // Append "pe -> hits" into a log on PE 0, guarded by the
        // distributed lock (cursor + slots in symmetric memory).
        let lock = ctx.lock_alloc().expect("lock");
        let cursor = ctx.calloc_array::<u64>(1).expect("cursor");
        let log = ctx.calloc_array::<u64>(2 * n).expect("log");
        ctx.set_lock(&lock).expect("acquire");
        let slot = ctx.get::<u64>(&cursor, 0, 0).expect("read cursor") as usize;
        ctx.put_slice(&log, 2 * slot, &[me as u64, hits], 0).expect("append");
        ctx.quiet().expect("quiet");
        ctx.put(&cursor, 0, slot as u64 + 1, 0).expect("advance cursor");
        ctx.quiet().expect("quiet");
        ctx.clear_lock(&lock).expect("release");

        // PE 0 waits until every entry landed, then prints the log.
        if me == 0 {
            ctx.wait_until(&cursor, 0, CmpOp::Eq, n as u64).expect("log complete");
            let entries = ctx.read_local_slice::<u64>(&log, 0, 2 * n).expect("log read");
            println!("per-PE contributions (arrival order):");
            for e in entries.chunks(2) {
                println!("  PE {} contributed {} hits", e[0], e[1]);
            }
        }
        ctx.barrier_all().expect("final barrier");
        pi
    })
    .expect("world run");

    let pi = estimates[0];
    assert!(estimates.iter().all(|&e| (e - pi).abs() < 1e-12), "allreduce agrees everywhere");
    println!(
        "π ≈ {pi:.5} from {} samples across {PES} PEs (error {:+.5})",
        200_000 * PES,
        pi - std::f64::consts::PI
    );
    assert!((pi - std::f64::consts::PI).abs() < 0.01, "estimate in the right neighbourhood");
}
