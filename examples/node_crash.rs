//! Whole-PE failure lifecycle: crash → detection → degraded barrier →
//! ring healing → restart → rejoin.
//!
//! Five hosts run with the heartbeat failure detector enabled
//! (`HeartbeatConfig::fast`, ~120 ms detection floor) and
//! `DegradedPolicy::Degrade`, so collectives keep working over the
//! survivors. PE 2 crashes mid-run: its neighbours stop seeing beats,
//! confirm the death with a probe, and gossip an epoch-stamped eviction
//! around the ring. The survivors ride through a `PeFailed` barrier into
//! a degraded one, exchange data over the healed ring (1 ↔ 3 route the
//! long way around the dead hop), then PE 2 restarts, rejoins at a new
//! epoch and receives fresh data from a survivor.
//!
//! ```text
//! cargo run --release --example node_crash
//! ```

use std::time::{Duration, Instant};

use shmem_ntb::net::RetryPolicy;
use shmem_ntb::prelude::*;

const PES: usize = 5;
const VICTIM: usize = 2;
const DATA: usize = 64;
/// The detector deliberately ignores boot-time silence (a peer that has
/// never beaten is "starting", not "dead"), so the crash waits until the
/// victim has published a few beats.
const BEAT_WARMUP: Duration = Duration::from_millis(100);
const DEAD_FOR: Duration = Duration::from_millis(900);
const DEADLINE: Duration = Duration::from_secs(10);

fn main() {
    let retry = RetryPolicy {
        ack_timeout: Duration::from_millis(40),
        max_retries: 8,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        probe_interval: Duration::from_millis(20),
        mailbox_timeout: Duration::from_millis(20),
        failure_threshold: 3,
    };
    let cfg = ShmemConfig::builder()
        .hosts(PES)
        .topology(Topology::ring(PES))
        .heartbeat(HeartbeatConfig::fast())
        .degraded_policy(DegradedPolicy::Degrade)
        .barrier_timeout(Duration::from_secs(20))
        .retry(retry)
        .build();

    ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        // [0..DATA) payload, [DATA] flag, [DATA+1] ack.
        let sym = ctx.calloc_array::<u64>(DATA + 2).expect("symmetric board");
        ctx.barrier_all().expect("healthy barrier");

        if me == VICTIM {
            std::thread::sleep(BEAT_WARMUP);
            println!("[pe {me}] crashing");
            ctx.node().crash();
            std::thread::sleep(DEAD_FOR);

            let epoch_before = ctx.membership_epoch();
            ctx.node().restart(DEADLINE).expect("rejoin handshake");
            println!(
                "[pe {me}] restarted and rejoined: epoch {} -> {}",
                epoch_before,
                ctx.membership_epoch()
            );
            assert!(ctx.is_pe_live(me));

            // Fresh data from PE 1 proves the rejoined node is a full
            // participant again (its pre-crash heap contents are gone).
            ctx.wait_until(&sym, DATA, CmpOp::Eq, 1).expect("post-rejoin flag");
            let got: Vec<u64> = ctx.read_local_slice(&sym, 0, DATA).expect("delivered");
            assert!(got.iter().enumerate().all(|(i, &v)| v == 7000 + i as u64));
            println!("[pe {me}] received {} words from pe 1 after rejoin", got.len());
            ctx.put(&sym, DATA + 1, 1u64, 1).expect("ack");
            ctx.quiet().expect("drain ack");
            return me;
        }

        // Survivors: the next barrier either degrades cleanly under the
        // detector's eviction, or fails typed with PeFailed and the retry
        // lands on the degraded path.
        let t0 = Instant::now();
        loop {
            match ctx.barrier_all() {
                Ok(()) => break,
                Err(ShmemError::PeFailed { pe, epoch }) => {
                    println!(
                        "[pe {me}] barrier saw PeFailed(pe {pe}, epoch {epoch}); retrying degraded"
                    );
                    assert_eq!(pe, VICTIM);
                }
                Err(e) => panic!("[pe {me}] unexpected barrier error: {e}"),
            }
            assert!(t0.elapsed() < DEADLINE, "degraded barrier never completed");
        }
        let live = ctx.live_pes();
        println!("[pe {me}] degraded barrier ok; live set {live:?}");
        assert!(!live.contains(&VICTIM));

        // Ring puts over the survivors: 1 -> 3 must route around the dead
        // hop (1 -> 0 -> 4 -> 3), exercising the healed path.
        let idx = live.iter().position(|&p| p == me).expect("self in live set");
        let next = live[(idx + 1) % live.len()];
        let prev = live[(idx + live.len() - 1) % live.len()];
        ctx.put(&sym, me, 100 + me as u64, next).expect("survivor put");
        ctx.quiet().expect("drain survivor put");
        ctx.wait_until(&sym, prev, CmpOp::Eq, 100 + prev as u64).expect("survivor ring data");
        println!("[pe {me}] survivor exchange complete (next {next}, prev {prev})");

        // Wait for the victim's rejoin, then welcome it back.
        while !ctx.is_pe_live(VICTIM) {
            assert!(t0.elapsed() < DEADLINE, "victim never rejoined");
            std::thread::sleep(Duration::from_millis(2));
        }
        println!("[pe {me}] victim rejoined at epoch {}", ctx.membership_epoch());
        if me == 1 {
            let fresh: Vec<u64> = (0..DATA as u64).map(|i| 7000 + i).collect();
            ctx.put_slice(&sym, 0, &fresh, VICTIM).expect("post-rejoin payload");
            ctx.quiet().expect("drain payload");
            ctx.put(&sym, DATA, 1u64, VICTIM).expect("post-rejoin flag");
            ctx.wait_until(&sym, DATA + 1, CmpOp::Eq, 1).expect("victim ack");
        }
        ctx.quiet().expect("final drain");
        me
    })
    .expect("world");

    println!(
        "node_crash: crash, eviction, degraded barrier, healed routing and rejoin all verified"
    );
}
