//! A distributed conjugate-gradient solver — the NPB "CG" kernel shape.
//!
//! The paper's motivation cites scientific computing, and its reference
//! [12] benchmarks OpenSHMEM with the NAS Parallel Benchmarks; this
//! example reproduces the CG communication pattern on a 2x2 NTB torus:
//! row-partitioned sparse mat-vec with one-sided halo exchange, plus
//! `allreduce` dot products every iteration.
//!
//! We solve `A x = b` for the 1-D shifted Laplacian
//! `A = tridiag(-1, 2+σ, -1)` (symmetric positive definite), and check
//! the distributed solver against a serial oracle.
//!
//! ```text
//! cargo run --release --example npb_cg
//! ```

use shmem_ntb::prelude::*;

const PES: usize = 4;
const ROWS_PER_PE: usize = 128;
const SIGMA: f64 = 0.1;
const MAX_ITERS: usize = 400;
const TOL: f64 = 1e-10;

/// y = A v for the global tridiagonal operator, given v with halos:
/// `v[0]` is the left halo, `v[1..=k]` the local rows, `v[k+1]` the right
/// halo (zero at the global boundary).
fn local_matvec(v: &[f64], k: usize) -> Vec<f64> {
    (1..=k).map(|i| -v[i - 1] + (2.0 + SIGMA) * v[i] - v[i + 1]).collect()
}

/// Serial oracle CG on the full system.
fn serial_cg(n: usize, b: &[f64]) -> Vec<f64> {
    let matvec = |v: &[f64]| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let left = if i > 0 { v[i - 1] } else { 0.0 };
                let right = if i + 1 < n { v[i + 1] } else { 0.0 };
                -left + (2.0 + SIGMA) * v[i] - right
            })
            .collect()
    };
    let dot = |a: &[f64], c: &[f64]| a.iter().zip(c).map(|(x, y)| x * y).sum::<f64>();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    for _ in 0..MAX_ITERS {
        if rr.sqrt() < TOL {
            break;
        }
        let ap = matvec(&p);
        let alpha = rr / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    x
}

fn rhs(i: usize) -> f64 {
    ((i as f64) * 0.05).sin() + 1.0
}

fn main() {
    let n = PES * ROWS_PER_PE;
    // CG is dominated by allreduce dot products; on a 2x2 torus the
    // dissemination barrier and reduction tree run in log-depth rounds
    // instead of ring sweeps.
    let cfg = ShmemConfig::builder().hosts(PES).topology(Topology::torus(2, 2)).build();

    let (pieces, iters): (Vec<Vec<f64>>, Vec<usize>) = {
        let results = ShmemWorld::run(cfg, |ctx| {
            let me = ctx.my_pe();
            let pes = ctx.num_pes();
            let k = ROWS_PER_PE;
            let base = me * k;
            // Symmetric search-direction vector with halo slots:
            // [left_halo, p_1..p_k, right_halo].
            let p_sym = ctx.calloc_array::<f64>(k + 2).expect("p vector");

            let b: Vec<f64> = (0..k).map(|i| rhs(base + i)).collect();
            let mut x = vec![0.0f64; k];
            let mut r = b.clone();
            let mut p: Vec<f64> = r.clone();
            let dot_local = |a: &[f64], c: &[f64]| a.iter().zip(c).map(|(u, v)| u * v).sum::<f64>();
            let mut rr = ctx.allreduce(ReduceOp::Sum, &[dot_local(&r, &r)]).expect("rr")[0];
            let mut iters = 0usize;

            for _ in 0..MAX_ITERS {
                if rr.sqrt() < TOL {
                    break;
                }
                iters += 1;
                // Publish p locally and exchange halos one-sidedly:
                // my first element -> left neighbour's right halo,
                // my last element -> right neighbour's left halo.
                ctx.write_local_slice(&p_sym, 1, &p).expect("publish p");
                if me > 0 {
                    ctx.put(&p_sym, k + 1, p[0], me - 1).expect("left halo");
                }
                if me + 1 < pes {
                    ctx.put(&p_sym, 0, p[k - 1], me + 1).expect("right halo");
                }
                ctx.barrier_all().expect("halo barrier");
                let mut v = ctx.read_local_slice::<f64>(&p_sym, 0, k + 2).expect("read p");
                // Global boundary rows see zero halos.
                if me == 0 {
                    v[0] = 0.0;
                }
                if me + 1 == pes {
                    v[k + 1] = 0.0;
                }
                let ap = local_matvec(&v, k);
                let pap = ctx.allreduce(ReduceOp::Sum, &[dot_local(&p, &ap)]).expect("pAp")[0];
                let alpha = rr / pap;
                for i in 0..k {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
                let rr_new = ctx.allreduce(ReduceOp::Sum, &[dot_local(&r, &r)]).expect("rr'")[0];
                let beta = rr_new / rr;
                rr = rr_new;
                for i in 0..k {
                    p[i] = r[i] + beta * p[i];
                }
                // Nobody may overwrite halos while others still read p_sym.
                ctx.barrier_all().expect("iteration barrier");
            }
            (x, iters)
        })
        .expect("world");
        results.into_iter().unzip()
    };

    let x_dist: Vec<f64> = pieces.into_iter().flatten().collect();
    let b_full: Vec<f64> = (0..n).map(rhs).collect();
    let x_ref = serial_cg(n, &b_full);
    let max_err = x_dist.iter().zip(&x_ref).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);

    println!("NPB-style CG: n = {n} over {PES} PEs, converged in {} iterations", iters[0]);
    println!("  max |x_distributed - x_serial| = {max_err:.3e}");
    assert!(iters.iter().all(|&i| i == iters[0]), "lockstep iteration counts");
    assert!(max_err < 1e-8, "distributed CG must match the serial oracle");
    println!("  OK: one-sided halo exchange + allreduce reproduce the serial solve");
}
