//! 1-D heat diffusion with halo exchange — the classic PGAS stencil.
//!
//! The rod is split across PEs; each time step every PE puts its boundary
//! cells into its neighbours' halo slots (one-sided, no receiver code)
//! and the ring barrier separates the steps. The simulated result is
//! checked against a single-threaded oracle, so the example doubles as a
//! whole-stack correctness demo.
//!
//! ```text
//! cargo run --release --example stencil_heat
//! ```

use shmem_ntb::prelude::*;

const CELLS_PER_PE: usize = 64;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;
const PES: usize = 4;

/// Single-threaded oracle: the same diffusion on the whole rod.
fn oracle(total: usize, steps: usize) -> Vec<f64> {
    let mut rod: Vec<f64> = (0..total).map(initial_temp).collect();
    for _ in 0..steps {
        let prev = rod.clone();
        for i in 0..total {
            let left = if i == 0 { prev[total - 1] } else { prev[i - 1] };
            let right = if i == total - 1 { prev[0] } else { prev[i + 1] };
            rod[i] = prev[i] + ALPHA * (left - 2.0 * prev[i] + right);
        }
    }
    rod
}

/// A bumpy initial temperature profile.
fn initial_temp(i: usize) -> f64 {
    100.0 * ((i as f64) * 0.1).sin().abs() + if i.is_multiple_of(7) { 50.0 } else { 0.0 }
}

fn main() {
    // A 1-D halo exchange only ever talks to ring neighbours, so the
    // ring is the matching fabric (a torus would waste its extra links).
    let cfg = ShmemConfig::builder().hosts(PES).topology(Topology::ring(PES)).build();
    let total = CELLS_PER_PE * PES;

    let pieces = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();
        let left_pe = (me + n - 1) % n;
        let right_pe = (me + 1) % n;

        // Layout: [left_halo, cell_0 .. cell_{k-1}, right_halo].
        let field = ctx.malloc_array::<f64>(CELLS_PER_PE + 2).expect("field");
        let base = me * CELLS_PER_PE;
        for i in 0..CELLS_PER_PE {
            ctx.write_local(&field, i + 1, initial_temp(base + i)).expect("init");
        }
        ctx.barrier_all().expect("initial barrier");

        for _ in 0..STEPS {
            // Publish boundary cells into the neighbours' halos:
            // my first cell is my left neighbour's right halo, and my
            // last cell is my right neighbour's left halo.
            let first = ctx.read_local::<f64>(&field, 1).expect("first");
            let last = ctx.read_local::<f64>(&field, CELLS_PER_PE).expect("last");
            ctx.put(&field, CELLS_PER_PE + 1, first, left_pe).expect("halo put left");
            ctx.put(&field, 0, last, right_pe).expect("halo put right");
            ctx.barrier_all().expect("halo barrier");

            // Local stencil update.
            let snapshot = ctx.read_local_slice::<f64>(&field, 0, CELLS_PER_PE + 2).expect("read");
            for i in 1..=CELLS_PER_PE {
                let v =
                    snapshot[i] + ALPHA * (snapshot[i - 1] - 2.0 * snapshot[i] + snapshot[i + 1]);
                ctx.write_local(&field, i, v).expect("write");
            }
            // Second barrier: nobody reads halos while neighbours still
            // update their interiors.
            ctx.barrier_all().expect("step barrier");
        }

        ctx.read_local_slice::<f64>(&field, 1, CELLS_PER_PE).expect("final read")
    })
    .expect("world run");

    let distributed: Vec<f64> = pieces.into_iter().flatten().collect();
    let reference = oracle(total, STEPS);
    let max_err =
        distributed.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);

    println!("1-D heat diffusion: {total} cells over {PES} PEs, {STEPS} steps");
    println!("  centre temperatures: {:?}", &distributed[total / 2 - 2..total / 2 + 2]);
    println!("  max |distributed - oracle| = {max_err:.3e}");
    assert!(max_err < 1e-9, "distributed stencil must match the oracle");
    println!("  OK: halo exchange over the NTB ring reproduces the serial result");
}
