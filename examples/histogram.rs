//! Distributed histogram with remote atomics.
//!
//! Every PE draws samples and bins them into a histogram that is
//! *sharded across a clique*: bin `b` lives on PE `b % num_pes`, and
//! increments are remote `atomic_fetch_add`s executed inside the owning
//! host's service thread. A final collect verifies the global count.
//!
//! ```text
//! cargo run --release --example histogram
//! ```

use rand::prelude::*;
use rand::rngs::StdRng;
use shmem_ntb::prelude::*;

const BINS: usize = 32;
const SAMPLES_PER_PE: usize = 2_000;
const PES: usize = 4;

fn main() {
    // Bin increments are all-to-all: every PE fires AMOs at every bin
    // owner, so the clique (one hop to everyone) is the matching fabric.
    let cfg = ShmemConfig::builder().hosts(PES).topology(Topology::clique(PES)).build();

    let local_views = ShmemWorld::run(cfg, |ctx| {
        let me = ctx.my_pe();
        let n = ctx.num_pes();
        let bins_here = BINS.div_ceil(n);
        // Each PE hosts `bins_here` slots; global bin b -> (PE b % n, slot b / n).
        let shard = ctx.calloc_array::<u64>(bins_here).expect("shard");
        ctx.barrier_all().expect("setup barrier");

        // Deterministic per-PE stream so the run is reproducible.
        let mut rng = StdRng::seed_from_u64(0xB10B + me as u64);
        for _ in 0..SAMPLES_PER_PE {
            // A crude bell shape: sum of three uniforms.
            let x: f64 = (0..3).map(|_| rng.random::<f64>()).sum::<f64>() / 3.0;
            let bin = ((x * BINS as f64) as usize).min(BINS - 1);
            let owner = bin % n;
            let slot = bin / n;
            ctx.atomic_fetch_add(&shard, slot, 1u64, owner).expect("remote increment");
        }
        ctx.barrier_all().expect("count barrier");

        // Everyone reconstructs the global histogram with gets.
        let mut global = vec![0u64; BINS];
        for (bin, slot_value) in global.iter_mut().enumerate() {
            let owner = bin % n;
            let slot = bin / n;
            *slot_value = if owner == me {
                ctx.read_local::<u64>(&shard, slot).expect("local read")
            } else {
                ctx.get::<u64>(&shard, slot, owner).expect("remote get")
            };
        }
        ctx.barrier_all().expect("final barrier");
        global
    })
    .expect("world run");

    // Every PE must have assembled the same histogram.
    for view in &local_views[1..] {
        assert_eq!(view, &local_views[0], "all PEs see one histogram");
    }
    let hist = &local_views[0];
    let total: u64 = hist.iter().sum();
    assert_eq!(total as usize, PES * SAMPLES_PER_PE, "no increment lost");

    println!("Distributed histogram ({} samples over {PES} PEs, {BINS} bins)", total);
    let peak = *hist.iter().max().unwrap() as f64;
    for (i, &count) in hist.iter().enumerate() {
        let bar = "#".repeat((count as f64 / peak * 50.0).round() as usize);
        println!("  bin {i:>2} [{count:>5}] {bar}");
    }

    // Bonus: a reduction sanity check — allreduce of per-PE sample counts.
    let reduce_cfg = ShmemConfig::builder().hosts(PES).topology(Topology::clique(PES)).build();
    let sums = ShmemWorld::run(reduce_cfg, |ctx| {
        ctx.allreduce(ReduceOp::Sum, &[SAMPLES_PER_PE as u64]).expect("allreduce")[0]
    })
    .expect("world run");
    assert!(sums.iter().all(|&s| s as usize == PES * SAMPLES_PER_PE));
    println!("  OK: {} remote atomic increments, none lost", total);
}
