/root/repo/target/release/deps/shmem_bench-fa015b23eaf594f3.d: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

/root/repo/target/release/deps/libshmem_bench-fa015b23eaf594f3.rlib: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

/root/repo/target/release/deps/libshmem_bench-fa015b23eaf594f3.rmeta: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

crates/shmem-bench/src/lib.rs:
crates/shmem-bench/src/compare.rs:
crates/shmem-bench/src/fig10.rs:
crates/shmem-bench/src/fig8.rs:
crates/shmem-bench/src/fig9.rs:
crates/shmem-bench/src/report.rs:
crates/shmem-bench/src/sizes.rs:
crates/shmem-bench/src/stats.rs:
