/root/repo/target/release/deps/repro-40bba3734acfb874.d: crates/shmem-bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-40bba3734acfb874: crates/shmem-bench/src/bin/repro.rs

crates/shmem-bench/src/bin/repro.rs:
