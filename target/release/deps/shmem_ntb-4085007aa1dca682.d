/root/repo/target/release/deps/shmem_ntb-4085007aa1dca682.d: src/lib.rs

/root/repo/target/release/deps/libshmem_ntb-4085007aa1dca682.rlib: src/lib.rs

/root/repo/target/release/deps/libshmem_ntb-4085007aa1dca682.rmeta: src/lib.rs

src/lib.rs:
