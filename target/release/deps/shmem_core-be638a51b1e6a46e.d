/root/repo/target/release/deps/shmem_core-be638a51b1e6a46e.d: crates/shmem-core/src/lib.rs crates/shmem-core/src/atomics.rs crates/shmem-core/src/barrier.rs crates/shmem-core/src/capi.rs crates/shmem-core/src/collectives.rs crates/shmem-core/src/config.rs crates/shmem-core/src/ctx.rs crates/shmem-core/src/error.rs crates/shmem-core/src/heap.rs crates/shmem-core/src/lock.rs crates/shmem-core/src/runtime.rs crates/shmem-core/src/signal.rs crates/shmem-core/src/strided.rs crates/shmem-core/src/symmetric.rs crates/shmem-core/src/sync.rs crates/shmem-core/src/teams.rs crates/shmem-core/src/types.rs

/root/repo/target/release/deps/libshmem_core-be638a51b1e6a46e.rlib: crates/shmem-core/src/lib.rs crates/shmem-core/src/atomics.rs crates/shmem-core/src/barrier.rs crates/shmem-core/src/capi.rs crates/shmem-core/src/collectives.rs crates/shmem-core/src/config.rs crates/shmem-core/src/ctx.rs crates/shmem-core/src/error.rs crates/shmem-core/src/heap.rs crates/shmem-core/src/lock.rs crates/shmem-core/src/runtime.rs crates/shmem-core/src/signal.rs crates/shmem-core/src/strided.rs crates/shmem-core/src/symmetric.rs crates/shmem-core/src/sync.rs crates/shmem-core/src/teams.rs crates/shmem-core/src/types.rs

/root/repo/target/release/deps/libshmem_core-be638a51b1e6a46e.rmeta: crates/shmem-core/src/lib.rs crates/shmem-core/src/atomics.rs crates/shmem-core/src/barrier.rs crates/shmem-core/src/capi.rs crates/shmem-core/src/collectives.rs crates/shmem-core/src/config.rs crates/shmem-core/src/ctx.rs crates/shmem-core/src/error.rs crates/shmem-core/src/heap.rs crates/shmem-core/src/lock.rs crates/shmem-core/src/runtime.rs crates/shmem-core/src/signal.rs crates/shmem-core/src/strided.rs crates/shmem-core/src/symmetric.rs crates/shmem-core/src/sync.rs crates/shmem-core/src/teams.rs crates/shmem-core/src/types.rs

crates/shmem-core/src/lib.rs:
crates/shmem-core/src/atomics.rs:
crates/shmem-core/src/barrier.rs:
crates/shmem-core/src/capi.rs:
crates/shmem-core/src/collectives.rs:
crates/shmem-core/src/config.rs:
crates/shmem-core/src/ctx.rs:
crates/shmem-core/src/error.rs:
crates/shmem-core/src/heap.rs:
crates/shmem-core/src/lock.rs:
crates/shmem-core/src/runtime.rs:
crates/shmem-core/src/signal.rs:
crates/shmem-core/src/strided.rs:
crates/shmem-core/src/symmetric.rs:
crates/shmem-core/src/sync.rs:
crates/shmem-core/src/teams.rs:
crates/shmem-core/src/types.rs:
