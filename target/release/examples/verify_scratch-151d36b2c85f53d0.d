/root/repo/target/release/examples/verify_scratch-151d36b2c85f53d0.d: examples/verify_scratch.rs

/root/repo/target/release/examples/verify_scratch-151d36b2c85f53d0: examples/verify_scratch.rs

examples/verify_scratch.rs:
