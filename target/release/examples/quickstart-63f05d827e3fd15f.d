/root/repo/target/release/examples/quickstart-63f05d827e3fd15f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-63f05d827e3fd15f: examples/quickstart.rs

examples/quickstart.rs:
