/root/repo/target/release/examples/lossy_ring-17e66a05a8a6b44e.d: examples/lossy_ring.rs

/root/repo/target/release/examples/lossy_ring-17e66a05a8a6b44e: examples/lossy_ring.rs

examples/lossy_ring.rs:
