/root/repo/target/debug/deps/extensions-a2728499ffd5f739.d: crates/shmem-core/tests/extensions.rs

/root/repo/target/debug/deps/extensions-a2728499ffd5f739: crates/shmem-core/tests/extensions.rs

crates/shmem-core/tests/extensions.rs:
