/root/repo/target/debug/deps/shmem_bench-29a609b494444af5.d: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

/root/repo/target/debug/deps/shmem_bench-29a609b494444af5: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

crates/shmem-bench/src/lib.rs:
crates/shmem-bench/src/compare.rs:
crates/shmem-bench/src/fig10.rs:
crates/shmem-bench/src/fig8.rs:
crates/shmem-bench/src/fig9.rs:
crates/shmem-bench/src/report.rs:
crates/shmem-bench/src/sizes.rs:
crates/shmem-bench/src/stats.rs:
