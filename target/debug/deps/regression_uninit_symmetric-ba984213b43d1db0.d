/root/repo/target/debug/deps/regression_uninit_symmetric-ba984213b43d1db0.d: tests/regression_uninit_symmetric.rs

/root/repo/target/debug/deps/regression_uninit_symmetric-ba984213b43d1db0: tests/regression_uninit_symmetric.rs

tests/regression_uninit_symmetric.rs:
