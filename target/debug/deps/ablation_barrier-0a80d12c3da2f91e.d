/root/repo/target/debug/deps/ablation_barrier-0a80d12c3da2f91e.d: crates/shmem-bench/benches/ablation_barrier.rs Cargo.toml

/root/repo/target/debug/deps/libablation_barrier-0a80d12c3da2f91e.rmeta: crates/shmem-bench/benches/ablation_barrier.rs Cargo.toml

crates/shmem-bench/benches/ablation_barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
