/root/repo/target/debug/deps/fig9_putget-1c475f44c67b8ec6.d: crates/shmem-bench/benches/fig9_putget.rs

/root/repo/target/debug/deps/fig9_putget-1c475f44c67b8ec6: crates/shmem-bench/benches/fig9_putget.rs

crates/shmem-bench/benches/fig9_putget.rs:
