/root/repo/target/debug/deps/ablation_params-deb563addaa1564c.d: crates/shmem-bench/benches/ablation_params.rs

/root/repo/target/debug/deps/ablation_params-deb563addaa1564c: crates/shmem-bench/benches/ablation_params.rs

crates/shmem-bench/benches/ablation_params.rs:
