/root/repo/target/debug/deps/ablation_params-1bb5d625d5d5977e.d: crates/shmem-bench/benches/ablation_params.rs Cargo.toml

/root/repo/target/debug/deps/libablation_params-1bb5d625d5d5977e.rmeta: crates/shmem-bench/benches/ablation_params.rs Cargo.toml

crates/shmem-bench/benches/ablation_params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
