/root/repo/target/debug/deps/shmem_ntb-179100a68731e077.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshmem_ntb-179100a68731e077.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
