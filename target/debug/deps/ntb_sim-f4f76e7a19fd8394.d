/root/repo/target/debug/deps/ntb_sim-f4f76e7a19fd8394.d: crates/ntb-sim/src/lib.rs crates/ntb-sim/src/bar.rs crates/ntb-sim/src/config_space.rs crates/ntb-sim/src/dma.rs crates/ntb-sim/src/doorbell.rs crates/ntb-sim/src/error.rs crates/ntb-sim/src/fault.rs crates/ntb-sim/src/link.rs crates/ntb-sim/src/memory.rs crates/ntb-sim/src/obs.rs crates/ntb-sim/src/port.rs crates/ntb-sim/src/scratchpad.rs crates/ntb-sim/src/stats.rs crates/ntb-sim/src/timing.rs crates/ntb-sim/src/window.rs

/root/repo/target/debug/deps/libntb_sim-f4f76e7a19fd8394.rlib: crates/ntb-sim/src/lib.rs crates/ntb-sim/src/bar.rs crates/ntb-sim/src/config_space.rs crates/ntb-sim/src/dma.rs crates/ntb-sim/src/doorbell.rs crates/ntb-sim/src/error.rs crates/ntb-sim/src/fault.rs crates/ntb-sim/src/link.rs crates/ntb-sim/src/memory.rs crates/ntb-sim/src/obs.rs crates/ntb-sim/src/port.rs crates/ntb-sim/src/scratchpad.rs crates/ntb-sim/src/stats.rs crates/ntb-sim/src/timing.rs crates/ntb-sim/src/window.rs

/root/repo/target/debug/deps/libntb_sim-f4f76e7a19fd8394.rmeta: crates/ntb-sim/src/lib.rs crates/ntb-sim/src/bar.rs crates/ntb-sim/src/config_space.rs crates/ntb-sim/src/dma.rs crates/ntb-sim/src/doorbell.rs crates/ntb-sim/src/error.rs crates/ntb-sim/src/fault.rs crates/ntb-sim/src/link.rs crates/ntb-sim/src/memory.rs crates/ntb-sim/src/obs.rs crates/ntb-sim/src/port.rs crates/ntb-sim/src/scratchpad.rs crates/ntb-sim/src/stats.rs crates/ntb-sim/src/timing.rs crates/ntb-sim/src/window.rs

crates/ntb-sim/src/lib.rs:
crates/ntb-sim/src/bar.rs:
crates/ntb-sim/src/config_space.rs:
crates/ntb-sim/src/dma.rs:
crates/ntb-sim/src/doorbell.rs:
crates/ntb-sim/src/error.rs:
crates/ntb-sim/src/fault.rs:
crates/ntb-sim/src/link.rs:
crates/ntb-sim/src/memory.rs:
crates/ntb-sim/src/obs.rs:
crates/ntb-sim/src/port.rs:
crates/ntb-sim/src/scratchpad.rs:
crates/ntb-sim/src/stats.rs:
crates/ntb-sim/src/timing.rs:
crates/ntb-sim/src/window.rs:
