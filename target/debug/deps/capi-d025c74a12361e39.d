/root/repo/target/debug/deps/capi-d025c74a12361e39.d: crates/shmem-core/tests/capi.rs

/root/repo/target/debug/deps/capi-d025c74a12361e39: crates/shmem-core/tests/capi.rs

crates/shmem-core/tests/capi.rs:
