/root/repo/target/debug/deps/chaos-e491279c9d6f1196.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-e491279c9d6f1196: tests/chaos.rs

tests/chaos.rs:
