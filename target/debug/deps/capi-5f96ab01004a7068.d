/root/repo/target/debug/deps/capi-5f96ab01004a7068.d: crates/shmem-core/tests/capi.rs Cargo.toml

/root/repo/target/debug/deps/libcapi-5f96ab01004a7068.rmeta: crates/shmem-core/tests/capi.rs Cargo.toml

crates/shmem-core/tests/capi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
