/root/repo/target/debug/deps/integration_full-c78439170cc412fd.d: tests/integration_full.rs

/root/repo/target/debug/deps/integration_full-c78439170cc412fd: tests/integration_full.rs

tests/integration_full.rs:
