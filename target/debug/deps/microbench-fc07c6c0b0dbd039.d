/root/repo/target/debug/deps/microbench-fc07c6c0b0dbd039.d: crates/shmem-bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-fc07c6c0b0dbd039: crates/shmem-bench/benches/microbench.rs

crates/shmem-bench/benches/microbench.rs:
