/root/repo/target/debug/deps/shmem_ntb-80af54522d9fe24c.d: src/lib.rs

/root/repo/target/debug/deps/libshmem_ntb-80af54522d9fe24c.rlib: src/lib.rs

/root/repo/target/debug/deps/libshmem_ntb-80af54522d9fe24c.rmeta: src/lib.rs

src/lib.rs:
