/root/repo/target/debug/deps/shmem_ntb-206db3b9b5a41141.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshmem_ntb-206db3b9b5a41141.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
