/root/repo/target/debug/deps/ring-07b3d39a951703ae.d: crates/ntb-net/tests/ring.rs

/root/repo/target/debug/deps/ring-07b3d39a951703ae: crates/ntb-net/tests/ring.rs

crates/ntb-net/tests/ring.rs:
