/root/repo/target/debug/deps/topology_compare-febe6a609955dfa7.d: crates/shmem-bench/benches/topology_compare.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_compare-febe6a609955dfa7.rmeta: crates/shmem-bench/benches/topology_compare.rs Cargo.toml

crates/shmem-bench/benches/topology_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
