/root/repo/target/debug/deps/api_conformance-22afe484ea50aa0d.d: tests/api_conformance.rs

/root/repo/target/debug/deps/api_conformance-22afe484ea50aa0d: tests/api_conformance.rs

tests/api_conformance.rs:
