/root/repo/target/debug/deps/proptests-3409a2c09686ccfd.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-3409a2c09686ccfd: tests/proptests.rs

tests/proptests.rs:
