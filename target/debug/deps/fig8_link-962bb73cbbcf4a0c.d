/root/repo/target/debug/deps/fig8_link-962bb73cbbcf4a0c.d: crates/shmem-bench/benches/fig8_link.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_link-962bb73cbbcf4a0c.rmeta: crates/shmem-bench/benches/fig8_link.rs Cargo.toml

crates/shmem-bench/benches/fig8_link.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
