/root/repo/target/debug/deps/fig8_link-fd287267be29808b.d: crates/shmem-bench/benches/fig8_link.rs

/root/repo/target/debug/deps/fig8_link-fd287267be29808b: crates/shmem-bench/benches/fig8_link.rs

crates/shmem-bench/benches/fig8_link.rs:
