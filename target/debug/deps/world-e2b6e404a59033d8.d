/root/repo/target/debug/deps/world-e2b6e404a59033d8.d: crates/shmem-core/tests/world.rs

/root/repo/target/debug/deps/world-e2b6e404a59033d8: crates/shmem-core/tests/world.rs

crates/shmem-core/tests/world.rs:
