/root/repo/target/debug/deps/mesh-7969b3fe68eb786c.d: crates/ntb-net/tests/mesh.rs Cargo.toml

/root/repo/target/debug/deps/libmesh-7969b3fe68eb786c.rmeta: crates/ntb-net/tests/mesh.rs Cargo.toml

crates/ntb-net/tests/mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
