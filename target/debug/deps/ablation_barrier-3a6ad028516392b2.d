/root/repo/target/debug/deps/ablation_barrier-3a6ad028516392b2.d: crates/shmem-bench/benches/ablation_barrier.rs

/root/repo/target/debug/deps/ablation_barrier-3a6ad028516392b2: crates/shmem-bench/benches/ablation_barrier.rs

crates/shmem-bench/benches/ablation_barrier.rs:
