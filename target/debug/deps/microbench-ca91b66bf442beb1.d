/root/repo/target/debug/deps/microbench-ca91b66bf442beb1.d: crates/shmem-bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-ca91b66bf442beb1.rmeta: crates/shmem-bench/benches/microbench.rs Cargo.toml

crates/shmem-bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
