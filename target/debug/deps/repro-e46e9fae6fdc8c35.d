/root/repo/target/debug/deps/repro-e46e9fae6fdc8c35.d: crates/shmem-bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e46e9fae6fdc8c35: crates/shmem-bench/src/bin/repro.rs

crates/shmem-bench/src/bin/repro.rs:
