/root/repo/target/debug/deps/repro-92578530fd1019f0.d: crates/shmem-bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-92578530fd1019f0.rmeta: crates/shmem-bench/src/bin/repro.rs Cargo.toml

crates/shmem-bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
