/root/repo/target/debug/deps/ntb_net-caf0fefe2a5be4f1.d: crates/ntb-net/src/lib.rs crates/ntb-net/src/checker.rs crates/ntb-net/src/config.rs crates/ntb-net/src/crc.rs crates/ntb-net/src/delivery.rs crates/ntb-net/src/forwarder.rs crates/ntb-net/src/frame.rs crates/ntb-net/src/handshake.rs crates/ntb-net/src/layout.rs crates/ntb-net/src/mailbox.rs crates/ntb-net/src/network.rs crates/ntb-net/src/node.rs crates/ntb-net/src/pending.rs crates/ntb-net/src/service.rs crates/ntb-net/src/topology.rs crates/ntb-net/src/trace.rs

/root/repo/target/debug/deps/libntb_net-caf0fefe2a5be4f1.rlib: crates/ntb-net/src/lib.rs crates/ntb-net/src/checker.rs crates/ntb-net/src/config.rs crates/ntb-net/src/crc.rs crates/ntb-net/src/delivery.rs crates/ntb-net/src/forwarder.rs crates/ntb-net/src/frame.rs crates/ntb-net/src/handshake.rs crates/ntb-net/src/layout.rs crates/ntb-net/src/mailbox.rs crates/ntb-net/src/network.rs crates/ntb-net/src/node.rs crates/ntb-net/src/pending.rs crates/ntb-net/src/service.rs crates/ntb-net/src/topology.rs crates/ntb-net/src/trace.rs

/root/repo/target/debug/deps/libntb_net-caf0fefe2a5be4f1.rmeta: crates/ntb-net/src/lib.rs crates/ntb-net/src/checker.rs crates/ntb-net/src/config.rs crates/ntb-net/src/crc.rs crates/ntb-net/src/delivery.rs crates/ntb-net/src/forwarder.rs crates/ntb-net/src/frame.rs crates/ntb-net/src/handshake.rs crates/ntb-net/src/layout.rs crates/ntb-net/src/mailbox.rs crates/ntb-net/src/network.rs crates/ntb-net/src/node.rs crates/ntb-net/src/pending.rs crates/ntb-net/src/service.rs crates/ntb-net/src/topology.rs crates/ntb-net/src/trace.rs

crates/ntb-net/src/lib.rs:
crates/ntb-net/src/checker.rs:
crates/ntb-net/src/config.rs:
crates/ntb-net/src/crc.rs:
crates/ntb-net/src/delivery.rs:
crates/ntb-net/src/forwarder.rs:
crates/ntb-net/src/frame.rs:
crates/ntb-net/src/handshake.rs:
crates/ntb-net/src/layout.rs:
crates/ntb-net/src/mailbox.rs:
crates/ntb-net/src/network.rs:
crates/ntb-net/src/node.rs:
crates/ntb-net/src/pending.rs:
crates/ntb-net/src/service.rs:
crates/ntb-net/src/topology.rs:
crates/ntb-net/src/trace.rs:
