/root/repo/target/debug/deps/proptests-d30a38e260607e21.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d30a38e260607e21.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
