/root/repo/target/debug/deps/topology_compare-85d5a1c97f67cb8d.d: crates/shmem-bench/benches/topology_compare.rs

/root/repo/target/debug/deps/topology_compare-85d5a1c97f67cb8d: crates/shmem-bench/benches/topology_compare.rs

crates/shmem-bench/benches/topology_compare.rs:
