/root/repo/target/debug/deps/world-1eaaad41bdfd915f.d: crates/shmem-core/tests/world.rs Cargo.toml

/root/repo/target/debug/deps/libworld-1eaaad41bdfd915f.rmeta: crates/shmem-core/tests/world.rs Cargo.toml

crates/shmem-core/tests/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
