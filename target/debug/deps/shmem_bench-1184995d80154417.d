/root/repo/target/debug/deps/shmem_bench-1184995d80154417.d: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libshmem_bench-1184995d80154417.rmeta: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs Cargo.toml

crates/shmem-bench/src/lib.rs:
crates/shmem-bench/src/compare.rs:
crates/shmem-bench/src/fig10.rs:
crates/shmem-bench/src/fig8.rs:
crates/shmem-bench/src/fig9.rs:
crates/shmem-bench/src/report.rs:
crates/shmem-bench/src/sizes.rs:
crates/shmem-bench/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
