/root/repo/target/debug/deps/mesh-5ea61a8f33521ba6.d: crates/ntb-net/tests/mesh.rs

/root/repo/target/debug/deps/mesh-5ea61a8f33521ba6: crates/ntb-net/tests/mesh.rs

crates/ntb-net/tests/mesh.rs:
