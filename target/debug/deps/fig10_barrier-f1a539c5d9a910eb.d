/root/repo/target/debug/deps/fig10_barrier-f1a539c5d9a910eb.d: crates/shmem-bench/benches/fig10_barrier.rs

/root/repo/target/debug/deps/fig10_barrier-f1a539c5d9a910eb: crates/shmem-bench/benches/fig10_barrier.rs

crates/shmem-bench/benches/fig10_barrier.rs:
