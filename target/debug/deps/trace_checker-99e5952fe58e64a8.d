/root/repo/target/debug/deps/trace_checker-99e5952fe58e64a8.d: tests/trace_checker.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_checker-99e5952fe58e64a8.rmeta: tests/trace_checker.rs Cargo.toml

tests/trace_checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
