/root/repo/target/debug/deps/fig9_putget-1b5740d4bae5facd.d: crates/shmem-bench/benches/fig9_putget.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_putget-1b5740d4bae5facd.rmeta: crates/shmem-bench/benches/fig9_putget.rs Cargo.toml

crates/shmem-bench/benches/fig9_putget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
