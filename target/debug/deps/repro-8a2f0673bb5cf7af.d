/root/repo/target/debug/deps/repro-8a2f0673bb5cf7af.d: crates/shmem-bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-8a2f0673bb5cf7af.rmeta: crates/shmem-bench/src/bin/repro.rs Cargo.toml

crates/shmem-bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
