/root/repo/target/debug/deps/integration_full-190247bdee7f6aa5.d: tests/integration_full.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_full-190247bdee7f6aa5.rmeta: tests/integration_full.rs Cargo.toml

tests/integration_full.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
