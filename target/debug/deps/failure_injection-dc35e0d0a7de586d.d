/root/repo/target/debug/deps/failure_injection-dc35e0d0a7de586d.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-dc35e0d0a7de586d: tests/failure_injection.rs

tests/failure_injection.rs:
