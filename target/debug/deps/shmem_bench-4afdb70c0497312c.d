/root/repo/target/debug/deps/shmem_bench-4afdb70c0497312c.d: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

/root/repo/target/debug/deps/libshmem_bench-4afdb70c0497312c.rlib: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

/root/repo/target/debug/deps/libshmem_bench-4afdb70c0497312c.rmeta: crates/shmem-bench/src/lib.rs crates/shmem-bench/src/compare.rs crates/shmem-bench/src/fig10.rs crates/shmem-bench/src/fig8.rs crates/shmem-bench/src/fig9.rs crates/shmem-bench/src/report.rs crates/shmem-bench/src/sizes.rs crates/shmem-bench/src/stats.rs

crates/shmem-bench/src/lib.rs:
crates/shmem-bench/src/compare.rs:
crates/shmem-bench/src/fig10.rs:
crates/shmem-bench/src/fig8.rs:
crates/shmem-bench/src/fig9.rs:
crates/shmem-bench/src/report.rs:
crates/shmem-bench/src/sizes.rs:
crates/shmem-bench/src/stats.rs:
