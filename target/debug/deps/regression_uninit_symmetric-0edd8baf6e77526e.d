/root/repo/target/debug/deps/regression_uninit_symmetric-0edd8baf6e77526e.d: tests/regression_uninit_symmetric.rs Cargo.toml

/root/repo/target/debug/deps/libregression_uninit_symmetric-0edd8baf6e77526e.rmeta: tests/regression_uninit_symmetric.rs Cargo.toml

tests/regression_uninit_symmetric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
