/root/repo/target/debug/deps/shmem_core-0622832b75de6430.d: crates/shmem-core/src/lib.rs crates/shmem-core/src/atomics.rs crates/shmem-core/src/barrier.rs crates/shmem-core/src/capi.rs crates/shmem-core/src/collectives.rs crates/shmem-core/src/config.rs crates/shmem-core/src/ctx.rs crates/shmem-core/src/error.rs crates/shmem-core/src/heap.rs crates/shmem-core/src/lock.rs crates/shmem-core/src/runtime.rs crates/shmem-core/src/signal.rs crates/shmem-core/src/strided.rs crates/shmem-core/src/symmetric.rs crates/shmem-core/src/sync.rs crates/shmem-core/src/teams.rs crates/shmem-core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libshmem_core-0622832b75de6430.rmeta: crates/shmem-core/src/lib.rs crates/shmem-core/src/atomics.rs crates/shmem-core/src/barrier.rs crates/shmem-core/src/capi.rs crates/shmem-core/src/collectives.rs crates/shmem-core/src/config.rs crates/shmem-core/src/ctx.rs crates/shmem-core/src/error.rs crates/shmem-core/src/heap.rs crates/shmem-core/src/lock.rs crates/shmem-core/src/runtime.rs crates/shmem-core/src/signal.rs crates/shmem-core/src/strided.rs crates/shmem-core/src/symmetric.rs crates/shmem-core/src/sync.rs crates/shmem-core/src/teams.rs crates/shmem-core/src/types.rs Cargo.toml

crates/shmem-core/src/lib.rs:
crates/shmem-core/src/atomics.rs:
crates/shmem-core/src/barrier.rs:
crates/shmem-core/src/capi.rs:
crates/shmem-core/src/collectives.rs:
crates/shmem-core/src/config.rs:
crates/shmem-core/src/ctx.rs:
crates/shmem-core/src/error.rs:
crates/shmem-core/src/heap.rs:
crates/shmem-core/src/lock.rs:
crates/shmem-core/src/runtime.rs:
crates/shmem-core/src/signal.rs:
crates/shmem-core/src/strided.rs:
crates/shmem-core/src/symmetric.rs:
crates/shmem-core/src/sync.rs:
crates/shmem-core/src/teams.rs:
crates/shmem-core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
