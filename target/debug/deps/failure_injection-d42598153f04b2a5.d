/root/repo/target/debug/deps/failure_injection-d42598153f04b2a5.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-d42598153f04b2a5.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
