/root/repo/target/debug/deps/repro-e8be3d4cab25e459.d: crates/shmem-bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e8be3d4cab25e459: crates/shmem-bench/src/bin/repro.rs

crates/shmem-bench/src/bin/repro.rs:
