/root/repo/target/debug/deps/fig10_barrier-5be73b2058e10df4.d: crates/shmem-bench/benches/fig10_barrier.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_barrier-5be73b2058e10df4.rmeta: crates/shmem-bench/benches/fig10_barrier.rs Cargo.toml

crates/shmem-bench/benches/fig10_barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
