/root/repo/target/debug/deps/trace_checker-9b9bf7f9ebfbf392.d: tests/trace_checker.rs

/root/repo/target/debug/deps/trace_checker-9b9bf7f9ebfbf392: tests/trace_checker.rs

tests/trace_checker.rs:
