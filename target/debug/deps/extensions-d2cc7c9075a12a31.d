/root/repo/target/debug/deps/extensions-d2cc7c9075a12a31.d: crates/shmem-core/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-d2cc7c9075a12a31.rmeta: crates/shmem-core/tests/extensions.rs Cargo.toml

crates/shmem-core/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
