/root/repo/target/debug/deps/ring-fc5cf88fd32b610b.d: crates/ntb-net/tests/ring.rs Cargo.toml

/root/repo/target/debug/deps/libring-fc5cf88fd32b610b.rmeta: crates/ntb-net/tests/ring.rs Cargo.toml

crates/ntb-net/tests/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
