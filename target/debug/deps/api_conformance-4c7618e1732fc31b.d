/root/repo/target/debug/deps/api_conformance-4c7618e1732fc31b.d: tests/api_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libapi_conformance-4c7618e1732fc31b.rmeta: tests/api_conformance.rs Cargo.toml

tests/api_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
