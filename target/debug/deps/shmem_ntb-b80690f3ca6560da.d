/root/repo/target/debug/deps/shmem_ntb-b80690f3ca6560da.d: src/lib.rs

/root/repo/target/debug/deps/shmem_ntb-b80690f3ca6560da: src/lib.rs

src/lib.rs:
