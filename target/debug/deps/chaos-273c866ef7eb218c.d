/root/repo/target/debug/deps/chaos-273c866ef7eb218c.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-273c866ef7eb218c.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
