/root/repo/target/debug/examples/lossy_ring-b9fe9d251955ee43.d: examples/lossy_ring.rs Cargo.toml

/root/repo/target/debug/examples/liblossy_ring-b9fe9d251955ee43.rmeta: examples/lossy_ring.rs Cargo.toml

examples/lossy_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
