/root/repo/target/debug/examples/heartbeat-f279014b3b6495b7.d: examples/heartbeat.rs Cargo.toml

/root/repo/target/debug/examples/libheartbeat-f279014b3b6495b7.rmeta: examples/heartbeat.rs Cargo.toml

examples/heartbeat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
