/root/repo/target/debug/examples/pi_montecarlo-efe3465a9bcd1ee4.d: examples/pi_montecarlo.rs

/root/repo/target/debug/examples/pi_montecarlo-efe3465a9bcd1ee4: examples/pi_montecarlo.rs

examples/pi_montecarlo.rs:
