/root/repo/target/debug/examples/npb_cg-a425d7140a54057a.d: examples/npb_cg.rs

/root/repo/target/debug/examples/npb_cg-a425d7140a54057a: examples/npb_cg.rs

examples/npb_cg.rs:
