/root/repo/target/debug/examples/npb_cg-52ddf9164ca781bc.d: examples/npb_cg.rs Cargo.toml

/root/repo/target/debug/examples/libnpb_cg-52ddf9164ca781bc.rmeta: examples/npb_cg.rs Cargo.toml

examples/npb_cg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
