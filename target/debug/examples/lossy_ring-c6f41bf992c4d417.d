/root/repo/target/debug/examples/lossy_ring-c6f41bf992c4d417.d: examples/lossy_ring.rs

/root/repo/target/debug/examples/lossy_ring-c6f41bf992c4d417: examples/lossy_ring.rs

examples/lossy_ring.rs:
