/root/repo/target/debug/examples/stencil_heat-90b7acb7d8582653.d: examples/stencil_heat.rs Cargo.toml

/root/repo/target/debug/examples/libstencil_heat-90b7acb7d8582653.rmeta: examples/stencil_heat.rs Cargo.toml

examples/stencil_heat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
