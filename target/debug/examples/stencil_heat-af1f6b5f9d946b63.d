/root/repo/target/debug/examples/stencil_heat-af1f6b5f9d946b63.d: examples/stencil_heat.rs

/root/repo/target/debug/examples/stencil_heat-af1f6b5f9d946b63: examples/stencil_heat.rs

examples/stencil_heat.rs:
