/root/repo/target/debug/examples/histogram-a9f2ae298ef0d928.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-a9f2ae298ef0d928: examples/histogram.rs

examples/histogram.rs:
