/root/repo/target/debug/examples/heartbeat-2368dd950dd10cb8.d: examples/heartbeat.rs

/root/repo/target/debug/examples/heartbeat-2368dd950dd10cb8: examples/heartbeat.rs

examples/heartbeat.rs:
