/root/repo/target/debug/examples/pi_montecarlo-052bb75c47b1b55a.d: examples/pi_montecarlo.rs Cargo.toml

/root/repo/target/debug/examples/libpi_montecarlo-052bb75c47b1b55a.rmeta: examples/pi_montecarlo.rs Cargo.toml

examples/pi_montecarlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
