/root/repo/target/debug/examples/bandwidth-ab2d6a38998498b0.d: examples/bandwidth.rs Cargo.toml

/root/repo/target/debug/examples/libbandwidth-ab2d6a38998498b0.rmeta: examples/bandwidth.rs Cargo.toml

examples/bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
