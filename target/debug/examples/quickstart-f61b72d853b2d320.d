/root/repo/target/debug/examples/quickstart-f61b72d853b2d320.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f61b72d853b2d320: examples/quickstart.rs

examples/quickstart.rs:
