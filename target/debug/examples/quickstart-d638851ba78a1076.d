/root/repo/target/debug/examples/quickstart-d638851ba78a1076.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d638851ba78a1076.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
