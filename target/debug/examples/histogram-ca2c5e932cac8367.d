/root/repo/target/debug/examples/histogram-ca2c5e932cac8367.d: examples/histogram.rs Cargo.toml

/root/repo/target/debug/examples/libhistogram-ca2c5e932cac8367.rmeta: examples/histogram.rs Cargo.toml

examples/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
