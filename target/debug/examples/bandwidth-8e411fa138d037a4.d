/root/repo/target/debug/examples/bandwidth-8e411fa138d037a4.d: examples/bandwidth.rs

/root/repo/target/debug/examples/bandwidth-8e411fa138d037a4: examples/bandwidth.rs

examples/bandwidth.rs:
